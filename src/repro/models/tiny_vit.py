"""A tiny Vision Transformer.

Section III-E of the paper points at "broader applications in transformer
architectures" as future work; this module implements that extension:
patch embedding → transformer encoder blocks (multi-head self-attention +
MLP, pre-norm residuals) → mean pool.  All the attention projections are
plain :class:`~repro.nn.linear.Linear` layers, so every adapter in
:mod:`repro.peft` — including the MetaLoRA variants — attaches to a
transformer unchanged.  The ``examples/transformer_extension.py`` script
and the extension bench exercise exactly that.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn import LayerNorm, Linear, Module, ModuleList, Parameter
from repro.nn import init


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product attention over token sequences."""

    def __init__(
        self, dim: int, heads: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        if dim % heads != 0:
            raise ShapeError(f"dim {dim} not divisible by heads {heads}")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        n, t, __ = x.shape
        return x.reshape(n, t, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3 or x.shape[2] != self.dim:
            raise ShapeError(f"attention expects (N, T, {self.dim}), got {x.shape}")
        n, t, __ = x.shape
        q = self._split_heads(self.q_proj(x))  # (N, H, T, D)
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        weights = ops.softmax(scores, axis=-1)
        attended = weights @ v  # (N, H, T, D)
        merged = attended.transpose(0, 2, 1, 3).reshape(n, t, self.dim)
        return self.out_proj(merged)


class TransformerBlock(Module):
    """Pre-norm residual block: attention then a GELU MLP."""

    def __init__(
        self,
        dim: int,
        heads: int,
        mlp_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attention = MultiHeadSelfAttention(dim, heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.fc1 = Linear(dim, mlp_dim, rng=rng)
        self.fc2 = Linear(mlp_dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.norm1(x))
        return x + self.fc2(ops.gelu(self.fc1(self.norm2(x))))


class TinyViT(Module):
    """Patch embedding → transformer blocks → layer norm → mean pool → head."""

    def __init__(
        self,
        image_size: int = 16,
        patch_size: int = 4,
        in_channels: int = 3,
        dim: int = 32,
        heads: int = 4,
        mlp_dim: int = 64,
        depth: int = 2,
        num_classes: int = 10,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if image_size % patch_size != 0:
            raise ShapeError(
                f"image size {image_size} not divisible by patch size {patch_size}"
            )
        rng = rng or np.random.default_rng()
        self.image_size = image_size
        self.patch_size = patch_size
        self.in_channels = in_channels
        grid = image_size // patch_size
        self.num_patches = grid * grid
        self.embed = Linear(in_channels * patch_size * patch_size, dim, rng=rng)
        self.position = Parameter(
            init.normal(rng, (1, self.num_patches, dim), std=0.02)
        )
        self.transformer_blocks = ModuleList(
            [TransformerBlock(dim, heads, mlp_dim, rng=rng) for __ in range(depth)]
        )
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng=rng)
        self.embedding_dim = dim
        self.num_classes = num_classes

    def _patchify(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if h != self.image_size or w != self.image_size or c != self.in_channels:
            raise ShapeError(
                f"TinyViT expects (N, {self.in_channels}, {self.image_size}, "
                f"{self.image_size}), got {x.shape}"
            )
        p = self.patch_size
        grid = h // p
        x = x.reshape(n, c, grid, p, grid, p)
        x = x.transpose(0, 2, 4, 1, 3, 5)
        return x.reshape(n, grid * grid, c * p * p)

    def features(self, x: Tensor) -> Tensor:
        """Pooled embedding ``(N, dim)`` before the classifier."""
        tokens = self.embed(self._patchify(x)) + self.position
        for block in self.transformer_blocks:
            tokens = block(tokens)
        return self.norm(tokens).mean(axis=1)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.features(x))


def vit_small(
    num_classes: int, rng: np.random.Generator, image_size: int = 16
) -> TinyViT:
    """The CPU-scale ViT used by the transformer-extension experiments."""
    return TinyViT(
        image_size=image_size,
        patch_size=4,
        dim=32,
        heads=4,
        mlp_dim=64,
        depth=2,
        num_classes=num_classes,
        rng=rng,
    )
