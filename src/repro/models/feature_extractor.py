"""Frozen feature extraction (Sec. III-B.1).

MetaLoRA conditions its parameter generation on features of the input.
The paper uses a pre-trained ResNet for this; here any backbone exposing
``features()`` can serve.  The extractor is frozen and runs under
``no_grad`` — gradients never flow into it, only into the mapping net that
consumes its output.

For image inputs the embedding is augmented with **global channel
statistics** (per-channel mean and standard deviation).  A full-size
pretrained ResNet's features implicitly carry this low-level style
information; the miniature backbones used here bottleneck it away, so it
is appended explicitly — the style signature is exactly what the mapping
net needs to identify the task (see docs/protocol.md).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.nn.module import Module


class FeatureExtractor(Module):
    """Wraps a backbone; emits detached, normalized features (+ statistics).

    ``include_stats`` appends per-channel mean/std for 4-d image inputs;
    it is ignored (with no dimension change) for 2-d feature-vector
    inputs, so callers adapting non-image models simply pass
    ``include_stats=False`` or 2-d data.
    """

    def __init__(
        self,
        backbone: Module,
        normalize: bool = True,
        include_stats: bool = True,
        input_channels: int = 3,
    ) -> None:
        super().__init__()
        if not hasattr(backbone, "features"):
            raise TypeError(
                f"{type(backbone).__name__} does not expose a features() method"
            )
        self.backbone = backbone
        self.backbone.freeze()
        self.backbone.eval()
        self.normalize = normalize
        self.include_stats = include_stats
        self.input_channels = input_channels

    @property
    def output_dim(self) -> int:
        base = int(self.backbone.embedding_dim)
        if self.include_stats:
            return base + 2 * self.input_channels
        return base

    def forward(self, x: Tensor) -> Tensor:
        with no_grad():
            feats = self.backbone.features(x).data
        if self.normalize:
            norms = np.linalg.norm(feats, axis=1, keepdims=True)
            feats = feats / np.maximum(norms, 1e-12)
        if self.include_stats:
            if x.ndim == 4:
                means = x.data.mean(axis=(2, 3))
                stds = x.data.std(axis=(2, 3))
            else:
                # Non-image input: keep the dimension contract with zeros.
                means = np.zeros((x.shape[0], self.input_channels), dtype=feats.dtype)
                stds = np.zeros((x.shape[0], self.input_channels), dtype=feats.dtype)
            feats = np.concatenate(
                [feats, means.astype(feats.dtype), stds.astype(feats.dtype)], axis=1
            )
        return Tensor(feats)
