"""Acceptance criteria for the observability layer.

Three properties the redesign promises:

- **zero-cost when disabled** — the instrumented hot paths never touch
  the registry machinery while ``OBS``/``TRACER`` are off,
- **bit-identical results** — observing a run changes nothing about its
  numerics (grid rows and embeddings compared with ``==``),
- **complete traces** — an observed grid exports a span for every cell,
  and the trainer publishes its loss/accuracy gauges and span tree.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.eval.embeddings import extract_embeddings
from repro.eval.protocol import Table1Config
from repro.models import resnet_small
from repro.nn import Linear, ReLU, Sequential
from repro.obs import OBS, TRACER, build_trees, load_trace, observed
from repro.runtime import run_table1_grid
from repro.train import SGD, Trainer


@pytest.fixture(scope="module")
def config():
    return replace(Table1Config().quick(), methods=("original", "lora"))


@pytest.fixture(scope="module")
def baseline(config):
    # No run directory, observability off: the reference numerics.
    return run_table1_grid(config, (0,), jobs=1)


def toy_trainer(rng):
    model = Sequential(Linear(8, 16, rng=rng), ReLU(), Linear(16, 3, rng=rng))
    x = rng.normal(size=(64, 8)).astype(np.float32)
    w = rng.normal(size=(8, 3)).astype(np.float32)
    y = (x @ w).argmax(axis=1)
    return Trainer(model, SGD(model.parameters(), lr=0.1)), x, y


class TestDisabledOverhead:
    def test_instrumented_paths_never_touch_registry_machinery(
        self, monkeypatch, rng
    ):
        # The cost contract: with OBS/TRACER off, instrumentation is one
        # attribute check.  Booby-trap the registry internals and drive
        # the instrumented train/eval paths end to end — any recording
        # attempt past the guard trips the trap.
        assert not OBS.enabled and not TRACER.enabled

        def boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("disabled observability touched the registry")

        monkeypatch.setattr(OBS, "_series_for", boom)
        trainer, x, y = toy_trainer(rng)
        trainer.fit(x, y, epochs=1, batch_size=16, rng=rng)
        trainer.evaluate(x, y)
        model = resnet_small(4, rng)
        images = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        extract_embeddings(model, images, batch_size=2)
        assert TRACER.drain() == []


class TestBitIdentity:
    def test_observed_grid_rows_match_unobserved(self, config, baseline, tmp_path):
        root = tmp_path / "run"
        watched = run_table1_grid(config, (0,), jobs=1, out_dir=root)
        # Observability restores the disabled default after the grid.
        assert not OBS.enabled and not TRACER.enabled
        plain_rows = baseline.rows_by_seed[0]
        watched_rows = watched.rows_by_seed[0]
        assert set(plain_rows) == set(watched_rows)
        for method in plain_rows:
            assert (
                plain_rows[method].accuracy_by_k
                == watched_rows[method].accuracy_by_k
            )

        # ... and the run directory holds a complete trace: one grid
        # root, one context span, one span per cell.
        records = load_trace(root / "trace.jsonl")
        (tree,) = build_trees(records)
        assert tree["name"] == "table1.grid"
        assert tree["status"] == "ok"
        contexts = [r for r in records if r["name"] == "table1.context"]
        assert [r["attrs"]["key"] for r in contexts] == [str(("context", 0))]
        cells = [r for r in records if r["name"] == "table1.cell"]
        assert sorted(r["attrs"]["key"] for r in cells) == sorted(
            str((0, method)) for method in config.methods
        )

    def test_extract_embeddings_identical_under_observation(self, rng):
        model = resnet_small(4, rng)
        images = rng.normal(size=(5, 3, 16, 16)).astype(np.float32)
        plain = extract_embeddings(model, images, batch_size=2)
        with observed():
            watched = extract_embeddings(model, images, batch_size=2)
            (root,) = TRACER.drain()
        assert np.array_equal(plain, watched)
        assert root["name"] == "eval.embed"
        assert root["attrs"] == {"path": "autograd", "samples": 5}


class TestTrainerObservability:
    def test_fit_publishes_gauges_and_a_span_tree(self, rng):
        trainer, x, y = toy_trainer(rng)
        with observed():
            trainer.fit(x, y, epochs=2, batch_size=16, rng=rng)
            trainer.evaluate(x, y)
            snap = OBS.snapshot()
            roots = TRACER.drain()
        assert snap["train.loss"]["kind"] == "gauge"
        assert snap["train.accuracy"]["kind"] == "gauge"
        assert snap["eval.accuracy"]["kind"] == "gauge"
        assert snap["train.step"]["calls"] == 2 * (64 // 16)

        fit = next(r for r in roots if r["name"] == "train.fit")
        epochs = [c for c in fit["children"] if c["name"] == "train.epoch"]
        assert [e["attrs"]["epoch"] for e in epochs] == [0, 1]
        first = epochs[0]["children"]
        assert sum(c["name"] == "train.step" for c in first) == 64 // 16
        # The per-epoch re-score shows up as eval inside the epoch, and
        # the explicit evaluate() call as its own root: the train-vs-eval
        # split the issue asks for.
        assert any(c["name"] == "eval.score" for c in first)
        assert [r["name"] for r in roots if r["name"] == "eval.score"] == [
            "eval.score"
        ]
