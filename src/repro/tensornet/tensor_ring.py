"""Tensor Ring (TR) format.

An order-``N`` TR tensor is a cyclic chain of 3-way cores
``G_k ∈ R^{R_{k-1} × I_k × R_k}`` with ``R_N = R_0`` (the ring closure):

    X_{i₁..i_N} = Trace( G₁[:, i₁, :] G₂[:, i₂, :] … G_N[:, i_N, :] )

MetaLoRA (TR) (Eq. 7) is the order-2 instance: two learned cores ``A`` and
``B`` plus a meta-generated closure matrix ``C ∈ R^{R×R}`` that ties the
ring together.

``tr_decompose`` uses TT-SVD: a tensor train is exactly a tensor ring with
boundary ranks 1, so the result is a valid TR representation and is exact
whenever the requested ranks are large enough.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError, ShapeError


@dataclass
class TRTensor:
    """A list of 3-way cores forming a closed ring."""

    cores: list[np.ndarray]

    def __post_init__(self) -> None:
        self.cores = [np.asarray(core) for core in self.cores]
        if not self.cores:
            raise ShapeError("a TR tensor needs at least one core")
        for k, core in enumerate(self.cores):
            if core.ndim != 3:
                raise ShapeError(f"TR core {k} must be 3-way, got order {core.ndim}")
        for k, core in enumerate(self.cores):
            next_core = self.cores[(k + 1) % len(self.cores)]
            if core.shape[2] != next_core.shape[0]:
                raise ShapeError(
                    f"TR ring broken between core {k} (right rank {core.shape[2]}) "
                    f"and core {(k + 1) % len(self.cores)} "
                    f"(left rank {next_core.shape[0]})"
                )

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(core.shape[1] for core in self.cores)

    @property
    def ranks(self) -> tuple[int, ...]:
        """Ring ranks ``(R₀, R₁, …, R_{N-1})`` with ``R_N = R₀`` implied."""
        return tuple(core.shape[0] for core in self.cores)

    def parameter_count(self) -> int:
        return sum(core.size for core in self.cores)


def tr_to_tensor(tr: TRTensor) -> np.ndarray:
    """Materialize the full tensor by chaining the cores and closing the ring."""
    result = tr.cores[0]  # (R0, I1, R1)
    for core in tr.cores[1:]:
        # (R0, ..., Rk) x (Rk, I_{k+1}, R_{k+1}) -> (R0, ..., I_{k+1}, R_{k+1})
        result = np.tensordot(result, core, axes=(result.ndim - 1, 0))
    # Close the ring: trace over (R0 ... R0).
    return np.trace(result, axis1=0, axis2=result.ndim - 1)


def random_tr(
    shape: tuple[int, ...], rank: int, rng: np.random.Generator
) -> TRTensor:
    """A random TR tensor with uniform ring rank ``rank``."""
    if rank <= 0:
        raise ShapeError(f"TR rank must be positive, got {rank}")
    cores = [rng.normal(size=(rank, dim, rank)) / rank for dim in shape]
    return TRTensor(cores=cores)


def tr_decompose(tensor: np.ndarray, max_rank: int) -> TRTensor:
    """TR decomposition via TT-SVD (boundary ranks fixed at 1).

    Exact when ``max_rank`` is at least the TT-rank of ``tensor``; otherwise
    the best rank-truncated SVD is used at every split, giving a
    quasi-optimal approximation.
    """
    if max_rank <= 0:
        raise ShapeError(f"max_rank must be positive, got {max_rank}")
    if tensor.ndim < 2:
        raise ShapeError("TR decomposition needs a tensor of order >= 2")

    shape = tensor.shape
    cores: list[np.ndarray] = []
    remaining = tensor.reshape(shape[0], -1)
    left_rank = 1
    for k in range(len(shape) - 1):
        matrix = remaining.reshape(left_rank * shape[k], -1)
        try:
            u, s, vt = np.linalg.svd(matrix, full_matrices=False)
        except np.linalg.LinAlgError as exc:
            raise DecompositionError(f"SVD failed during TT-SVD: {exc}") from exc
        rank = min(max_rank, int((s > s[0] * 1e-12).sum()) if s.size else 1)
        rank = max(rank, 1)
        cores.append(u[:, :rank].reshape(left_rank, shape[k], rank))
        remaining = (s[:rank, None] * vt[:rank]).reshape(rank, -1)
        left_rank = rank
    cores.append(remaining.reshape(left_rank, shape[-1], 1))
    return TRTensor(cores=cores)
