"""Cross-subsystem consistency: the PEFT adapters' updates are exactly the
tensor-network formats from repro.tensornet.

These tests tie the two halves of the library together: building the
adapter's ΔW through the generic format classes must give the same tensor
the adapter computes internally — i.e. Eqs. 5-7 really are CP/TR tensors.
"""

import numpy as np

from repro.nn import Conv2d, Linear
from repro.peft import (
    MetaLoRACPLinear,
    MetaLoRATRConv,
    MetaLoRATRLinear,
    TTLoRALinear,
)
from repro.tensornet import (
    CPTensor,
    TRTensor,
    TTTensor,
    cp_to_tensor,
    tr_to_tensor,
    tt_to_tensor,
)


class TestCPConsistency:
    def test_meta_cp_delta_is_a_cp_tensor(self, rng):
        """Eq. 6 == a 2-mode CP tensor with λ = the seed."""
        adapter = MetaLoRACPLinear(Linear(6, 5, rng=rng), rank=3, rng=rng)
        adapter.factor_b.data[...] = rng.normal(size=adapter.factor_b.shape).astype(
            np.float32
        )
        seed = rng.normal(size=3)
        cp = CPTensor(
            lam=seed,
            factors=[adapter.factor_a.data, adapter.factor_b.data.T],
        )
        via_format = cp_to_tensor(cp) * adapter.scaling
        via_adapter = np.einsum(
            "ir,ro,r->io", adapter.factor_a.data, adapter.factor_b.data, seed
        ) * adapter.scaling
        assert np.allclose(via_format, via_adapter, atol=1e-6)


class TestTRConsistency:
    def test_meta_tr_linear_delta_is_a_tr_tensor(self, rng):
        """Eq. 7 == a ring of [A, B, C-as-core] with a dummy mode on C."""
        adapter = MetaLoRATRLinear(Linear(6, 5, rng=rng), rank=2, rng=rng)
        adapter.core_b.data[...] = rng.normal(size=adapter.core_b.shape).astype(
            np.float32
        )
        seed = rng.normal(size=(2, 2))
        # C[r2, r0] viewed as a TR core of shape (r2, 1, r0).
        ring = TRTensor(
            cores=[
                adapter.core_a.data,  # (r0, I, r1)
                adapter.core_b.data,  # (r1, O, r2)
                seed.reshape(2, 1, 2),  # (r2, 1, r0)
            ]
        )
        via_format = tr_to_tensor(ring)[:, :, 0] * adapter.scaling
        via_adapter = np.einsum(
            "pir,roq,qp->io", adapter.core_a.data, adapter.core_b.data, seed
        ) * adapter.scaling
        assert np.allclose(via_format, via_adapter, atol=1e-6)

    def test_meta_tr_conv_delta_is_a_tr_tensor(self, rng):
        adapter = MetaLoRATRConv(Conv2d(3, 4, 3, rng=rng), rank=2, rng=rng)
        adapter.core_b.data[...] = rng.normal(size=adapter.core_b.shape).astype(
            np.float32
        )
        seed = rng.normal(size=(2, 2))
        adapter.static_seed.data[...] = seed.astype(np.float32)
        k, c_in = 3, 3
        spatial_core = adapter.core_a.data.reshape(2, k * k * c_in, 2)
        ring = TRTensor(
            cores=[spatial_core, adapter.core_b.data,
                   adapter.static_seed.data.reshape(2, 1, 2)]
        )
        via_format = (
            tr_to_tensor(ring)[:, :, 0].reshape(k, k, c_in, 4) * adapter.scaling
        )
        assert np.allclose(via_format, adapter.delta_weight(), atol=1e-5)


class TestTTConsistency:
    def test_tt_lora_delta_is_a_tt_tensor(self, rng):
        adapter = TTLoRALinear(Linear(12, 10, rng=rng), rank=2, rng=rng)
        adapter.core4.data[...] = rng.normal(size=adapter.core4.shape).astype(
            np.float32
        )
        tt = TTTensor(
            cores=[
                adapter.core1.data,
                adapter.core2.data,
                adapter.core3.data,
                adapter.core4.data,
            ]
        )
        grid = tt_to_tensor(tt)  # (I1, I2, O1, O2)
        i1, i2 = adapter.in_grid
        o1, o2 = adapter.out_grid
        via_format = grid.reshape(i1 * i2, o1 * o2) * adapter.scaling
        assert np.allclose(via_format, adapter.delta_weight(), atol=1e-6)
