"""MetricsRegistry semantics: kinds, labels, merge, the disabled fast path."""

import json

import pytest

from repro.errors import ObsError
from repro.obs import OBS, MetricsRegistry, observed
from repro.obs.metrics import parse_name, render_name


def registry() -> MetricsRegistry:
    return MetricsRegistry(enabled=True)


class TestKinds:
    def test_counter_accumulates_calls_and_payloads(self):
        reg = registry()
        reg.inc("op", 2, seconds=0.5, bytes=10)
        reg.inc("op", 1, bytes=6)
        entry = reg.snapshot()["op"]
        assert entry == {"kind": "counter", "calls": 3, "seconds": 0.5, "bytes": 16}

    def test_timer_counts_each_observation(self):
        reg = registry()
        reg.observe("sweep", 0.25, bytes=8)
        reg.observe("sweep", 0.75)
        entry = reg.snapshot()["sweep"]
        assert entry == {"kind": "timer", "calls": 2, "seconds": 1.0, "bytes": 8}

    def test_gauge_is_last_value_wins(self):
        reg = registry()
        reg.gauge("loss", 2.5)
        reg.gauge("loss", 1.25)
        entry = reg.snapshot()["loss"]
        assert entry["kind"] == "gauge"
        assert entry["value"] == 1.25
        assert entry["calls"] == 2

    def test_histogram_buckets_exact_values(self):
        reg = registry()
        reg.hist("batch.size", 8)
        reg.hist("batch.size", 8)
        reg.hist("batch.size", 32)
        entry = reg.snapshot()["batch.size"]
        assert entry["kind"] == "histogram"
        assert entry["buckets"] == {"8": 2, "32": 1}
        assert entry["calls"] == 3

    def test_time_context_records_a_timer(self):
        reg = registry()
        with reg.time("block"):
            pass
        entry = reg.snapshot()["block"]
        assert entry["kind"] == "timer" and entry["calls"] == 1

    def test_kind_conflict_raises(self):
        reg = registry()
        reg.inc("name")
        with pytest.raises(ObsError, match="is a counter, not a gauge"):
            reg.gauge("name", 1.0)

    def test_legacy_record_reuses_existing_kind(self):
        reg = registry()
        reg.observe("op", 0.5)
        reg.record_legacy("op", calls=2, seconds=0.25)  # untyped: no conflict
        entry = reg.snapshot()["op"]
        assert entry["kind"] == "timer"
        assert entry["calls"] == 3


class TestLabels:
    def test_labels_render_sorted_and_parse_back(self):
        reg = registry()
        reg.inc("cells", method="lora", seed=0)
        (rendered,) = reg.snapshot()
        assert rendered == "cells{method=lora,seed=0}"
        assert parse_name(rendered) == ("cells", (("method", "lora"), ("seed", "0")))

    def test_distinct_labels_are_distinct_series(self):
        reg = registry()
        reg.inc("cells", method="lora")
        reg.inc("cells", method="original")
        reg.inc("cells", method="lora")
        snap = reg.snapshot()
        assert snap["cells{method=lora}"]["calls"] == 2
        assert snap["cells{method=original}"]["calls"] == 1

    def test_render_name_without_labels_is_the_name(self):
        assert render_name("plain", ()) == "plain"
        assert parse_name("plain") == ("plain", ())


class TestDisabledFastPath:
    def test_enabled_is_a_plain_attribute(self):
        # The zero-cost contract: the hot-path guard is one attribute
        # read, not a property call.
        assert "enabled" in vars(MetricsRegistry())

    def test_disabled_records_touch_no_series_machinery(self, monkeypatch):
        reg = MetricsRegistry(enabled=False)

        def boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("disabled registry resolved a series")

        monkeypatch.setattr(reg, "_series_for", boom)
        reg.inc("op")
        reg.observe("op2", 0.5)
        reg.gauge("g", 1.0)
        reg.hist("h", 3)
        reg.record_legacy("l")
        with reg.time("t"):
            pass
        assert reg.snapshot() == {}

    def test_inc_ignores_nonpositive_counts(self):
        reg = registry()
        reg.inc("op", 0)
        reg.inc("op", -3)
        assert reg.snapshot() == {}


class TestSnapshotsAndMerge:
    def test_snapshot_is_sorted_and_json_round_trips(self):
        reg = registry()
        reg.inc("z.last")
        reg.inc("a.first")
        snap = reg.snapshot()
        assert list(snap) == ["a.first", "z.last"]
        assert json.loads(json.dumps(snap)) == snap

    def test_merge_folds_counters_gauges_and_buckets(self):
        source = registry()
        source.inc("op", 2, seconds=0.5, bytes=4)
        source.gauge("loss", 0.75)
        source.hist("sizes", 8)
        target = registry()
        target.inc("op", 1)
        target.gauge("loss", 9.0)
        target.hist("sizes", 8)
        target.merge(source.snapshot())
        snap = target.snapshot()
        assert snap["op"]["calls"] == 3
        assert snap["op"]["seconds"] == 0.5
        assert snap["loss"]["value"] == 0.75  # gauges adopt the incoming value
        assert snap["sizes"]["buckets"] == {"8": 2}

    def test_merge_works_while_disabled(self):
        target = MetricsRegistry(enabled=False)
        target.merge({"op": {"kind": "counter", "calls": 2, "seconds": 0.0, "bytes": 0}})
        assert target.snapshot()["op"]["calls"] == 2

    def test_merge_rejects_unknown_kind(self):
        with pytest.raises(ObsError, match="unknown kind"):
            registry().merge({"op": {"kind": "meter", "calls": 1}})

    def test_merge_legacy_folds_flat_counters(self):
        target = MetricsRegistry(enabled=False)
        target.merge_legacy({"op": {"calls": 2, "seconds": 0.5, "bytes": 8}})
        assert target.snapshot()["op"] == {
            "kind": "counter",
            "calls": 2,
            "seconds": 0.5,
            "bytes": 8,
        }

    def test_totals_reports_calls_seconds_bytes(self):
        reg = registry()
        reg.inc("op", 2, seconds=0.5, bytes=4)
        assert reg.totals() == {"op": (2, 0.5, 4)}

    def test_legacy_counters_flatten_histograms(self):
        reg = registry()
        reg.hist("serve.batch.size", 8)
        reg.hist("serve.batch.size", 8)
        reg.inc("serve.batches", 2)
        flat = reg.legacy_counters()
        assert flat["serve.batch.size.8"]["calls"] == 2
        assert "serve.batch.size" not in flat
        assert flat["serve.batches"]["calls"] == 2

    def test_reset_clears_series(self):
        reg = registry()
        reg.inc("op")
        reg.reset()
        assert reg.snapshot() == {}


class TestObservedContext:
    def test_observed_enables_and_restores(self):
        from repro.obs import TRACER

        assert not OBS.enabled and not TRACER.enabled
        with observed() as (metrics, tracer):
            assert metrics.enabled and tracer.enabled
        assert not OBS.enabled and not TRACER.enabled

    def test_observed_can_enable_metrics_only(self):
        from repro.obs import TRACER

        with observed(trace=False):
            assert OBS.enabled and not TRACER.enabled
