"""The Table I experiment protocol.

Pipeline (mirroring the paper's preliminary study):

1. **Pre-train** a backbone (ResNet or MLP-Mixer) on the base task — the
   stand-in for the upstream pre-trained model.
2. **Adapt** one copy per method on an episodic mixture of shifted tasks:
   Original (no adaptation), LoRA, Multi-LoRA, Meta-LoRA CP, Meta-LoRA TR.
   Only adapter parameters train; the backbone stays frozen.
3. **Evaluate** by KNN over embeddings: per shifted task, fit a KNN on a
   support split and classify a query split, at K=5 and K=10; report the
   mean accuracy over tasks.

``run_table1`` executes one seed; the Table I bench repeats it over seeds
and applies the two-sided t-test, reproducing the table's ``*`` markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.data.synthetic import SyntheticTaskData, generate_task_data
from repro.data.tasks import TaskDistribution
from repro.errors import ConfigError
from repro.eval.embeddings import extract_embeddings
from repro.eval.knn import KNNClassifier
from repro.models.feature_extractor import FeatureExtractor
from repro.nn.module import Module
from repro.peft.api import PEFT_METHODS, attach
from repro.peft.meta_model import MetaLoRAModel
from repro.train.optim import Adam
from repro.train.meta_trainer import MetaTrainer
from repro.train.trainer import Trainer
from repro.utils.rng import spawn_rngs

METHODS = ("original", "lora", "multi_lora", "meta_lora_cp", "meta_lora_tr")

#: Pretty names matching the rows of Table I.
METHOD_LABELS = {
    "original": "Original",
    "lora": "LoRA",
    "multi_lora": "Multi-LoRA",
    "meta_lora_cp": "Meta-LoRA CP",
    "meta_lora_tr": "Meta-LoRA TR",
}


@dataclass
class Table1Config:
    """All knobs of the Table I experiment; defaults are CPU-quick."""

    backbone: str = "resnet"  # "resnet" | "mixer"
    num_tasks: int = 21  # base task + (num_tasks - 1) shifted tasks
    num_classes: int = 8
    image_size: int = 16
    rank: int = 4
    branches: int = 3  # Multi-LoRA branch count
    mapping_hidden: int = 32
    resnet_channels: tuple[int, ...] = (4, 8, 16)
    mixer_hidden: int = 16
    pretrain_samples: int = 512
    pretrain_epochs: int = 6
    pretrain_batch: int = 32
    pretrain_lr: float = 3e-3
    adapt_samples_per_task: int = 64
    adapt_episodes: int = 600
    adapt_batch: int = 16
    adapt_lr: float = 3e-3
    support_per_task: int = 64
    query_per_task: int = 64
    ks: tuple[int, ...] = (5, 10)
    noise_level: float = 0.5
    knn_metric: str = "cosine"
    methods: tuple[str, ...] = METHODS

    def __post_init__(self) -> None:
        if self.backbone not in ("resnet", "mixer"):
            raise ConfigError(f"unknown backbone {self.backbone!r}")
        if self.num_tasks < 2:
            raise ConfigError("need the base task plus at least one shifted task")
        unknown = set(self.methods) - set(METHODS)
        if unknown:
            raise ConfigError(f"unknown methods: {sorted(unknown)}")

    def quick(self) -> "Table1Config":
        """A miniature copy for integration tests."""
        return replace(
            self,
            num_tasks=3,
            num_classes=4,
            pretrain_samples=128,
            pretrain_epochs=2,
            adapt_samples_per_task=48,
            adapt_episodes=20,
            support_per_task=20,
            query_per_task=20,
        )


@dataclass
class Table1Row:
    """One method's accuracies, keyed by K."""

    method: str
    accuracy_by_k: dict[int, float] = field(default_factory=dict)


def build_backbone(config: Table1Config, rng: np.random.Generator) -> Module:
    """Fresh, randomly initialized backbone of the configured architecture.

    Widths are deliberately small (see DESIGN.md): beyond CPU economy, a
    narrow backbone prevents static adapters from doing task inference
    internally, which is the regime where the paper's comparison is
    meaningful.
    """
    if config.backbone == "resnet":
        from repro.models.resnet import ResNet

        return ResNet(
            in_channels=3,
            stage_channels=config.resnet_channels,
            blocks_per_stage=1,
            num_classes=config.num_classes,
            rng=rng,
        )
    from repro.models.mlp_mixer import MLPMixer

    return MLPMixer(
        image_size=config.image_size,
        patch_size=4,
        in_channels=3,
        hidden_dim=config.mixer_hidden,
        token_mlp_dim=config.mixer_hidden,
        channel_mlp_dim=config.mixer_hidden * 2,
        depth=2,
        num_classes=config.num_classes,
        rng=rng,
    )


def pretrain_backbone(
    config: Table1Config, rng: np.random.Generator
) -> tuple[Module, dict[str, np.ndarray]]:
    """Train a backbone on the base task; returns it plus its state dict."""
    tasks = TaskDistribution(
        config.num_tasks,
        image_size=config.image_size,
        seed=int(rng.integers(2**31)),
        noise_level=config.noise_level,
    )
    data = generate_task_data(
        tasks.base_task, config.pretrain_samples, config.num_classes, config.image_size, rng
    )
    backbone = build_backbone(config, rng)
    trainer = Trainer(backbone, Adam(backbone.parameters(), lr=config.pretrain_lr))
    trainer.fit(
        data.images,
        data.labels,
        epochs=config.pretrain_epochs,
        batch_size=config.pretrain_batch,
        rng=rng,
    )
    backbone.eval()
    return backbone, backbone.state_dict()


def build_adapted_model(
    method: str,
    config: Table1Config,
    pretrained_state: dict[str, np.ndarray],
    rng: np.random.Generator,
    extractor_state: dict[str, np.ndarray] | None = None,
) -> Module:
    """A fresh copy of the pretrained backbone wearing ``method``'s adapters.

    For meta methods the returned module is a :class:`MetaLoRAModel`.  The
    feature extractor follows the paper (Sec. III-B.1): a frozen
    *pre-trained ResNet*, regardless of the adapted backbone's
    architecture.  ``extractor_state`` supplies that ResNet's weights;
    when omitted (and the backbone is a ResNet) the backbone's own
    pretrained state is reused.
    """
    backbone = build_backbone(config, rng)
    backbone.load_state_dict(pretrained_state)

    if method == "original":
        backbone.freeze()
        return backbone

    if method not in PEFT_METHODS:
        raise ConfigError(f"unknown method {method!r}")
    options = {"branches": config.branches} if method == "multi_lora" else {}
    result = attach(backbone, method, rank=config.rank, rng=rng, **options)
    if result.is_meta:
        resnet_config = replace(config, backbone="resnet")
        extractor_backbone = build_backbone(resnet_config, rng)
        if extractor_state is not None:
            extractor_backbone.load_state_dict(extractor_state)
        elif config.backbone == "resnet":
            extractor_backbone.load_state_dict(pretrained_state)
        else:
            raise ConfigError(
                "meta methods on a non-ResNet backbone need extractor_state "
                "(the pretrained ResNet feature source, per Sec. III-B.1)"
            )
        extractor = FeatureExtractor(extractor_backbone)
        return MetaLoRAModel(
            backbone,
            extractor,
            mapping_hidden=config.mapping_hidden,
            rng=rng,
            adapters=result,
        )
    return backbone


def _adapt(
    model: Module,
    task_datasets: list[SyntheticTaskData],
    config: Table1Config,
    rng: np.random.Generator,
) -> None:
    """Episodic adapter training; 'original' (nothing trainable) is a no-op."""
    trainable = list(model.trainable_parameters())
    if not trainable:
        return
    trainer = Trainer(model, Adam(trainable, lr=config.adapt_lr), grad_clip=5.0)
    MetaTrainer(trainer, task_datasets).run(
        episodes=config.adapt_episodes, batch_size=config.adapt_batch, rng=rng
    )
    model.eval()


def _knn_accuracy(
    model: Module,
    eval_sets: list[tuple[SyntheticTaskData, SyntheticTaskData]],
    k: int,
    metric: str,
) -> float:
    """Mean per-task KNN accuracy: fit on support, score on query."""
    scores = []
    for support, query in eval_sets:
        knn = KNNClassifier(metric=metric).fit(
            extract_embeddings(model, support.images), support.labels
        )
        scores.append(
            knn.score(extract_embeddings(model, query.images), query.labels, k)
        )
    return float(np.mean(scores))


@dataclass
class Table1SeedContext:
    """Everything a ``(method, seed)`` cell shares within one seed.

    Produced once per seed by :func:`prepare_table1_seed` — the pretrained
    backbone state, the (pretrained-ResNet) feature-extractor state and
    the frozen task splits — then consumed by any number of
    :func:`run_table1_cell` calls.  The fields are plain numpy containers,
    so a context pickles cleanly to process-pool workers
    (:mod:`repro.runtime`), which deserialize the shared frozen backbone
    instead of redoing pretraining per cell.
    """

    seed: int
    state: dict[str, np.ndarray]
    extractor_state: dict[str, np.ndarray]
    train_sets: list[SyntheticTaskData]
    eval_sets: list[tuple[SyntheticTaskData, SyntheticTaskData]]


def _protocol_rngs(config: Table1Config, seed: int) -> list[np.random.Generator]:
    """The seed's RNG fan-out: pretrain, tasks, eval, then one per method.

    Spawned in one call so every consumer — serial loop or pool worker —
    derives bit-identical streams from ``(seed, position)`` alone.  (The
    historical count of ``4 + len(methods)`` leaves one spare stream; it
    is kept so existing seeds keep reproducing bit-identically.)
    """
    return spawn_rngs(seed, 4 + len(config.methods))


def method_rng(config: Table1Config, seed: int, method: str) -> np.random.Generator:
    """The cell-keyed RNG for ``(method, seed)`` — position 3 + method index."""
    if method not in config.methods:
        raise ConfigError(f"method {method!r} not in config.methods")
    return _protocol_rngs(config, seed)[3 + config.methods.index(method)]


def prepare_table1_seed(config: Table1Config, seed: int) -> Table1SeedContext:
    """Pretrain the backbone and freeze the task splits for one seed."""
    rng_pretrain, rng_tasks, rng_eval = _protocol_rngs(config, seed)[:3]

    __, state = pretrain_backbone(config, rng_pretrain)
    if config.backbone == "resnet":
        extractor_state = state
    else:
        # The paper's feature extractor is a pre-trained ResNet regardless
        # of the adapted architecture (Sec. III-B.1).
        __, extractor_state = pretrain_backbone(
            replace(config, backbone="resnet"), rng_pretrain
        )

    tasks = TaskDistribution(
        config.num_tasks,
        image_size=config.image_size,
        seed=int(rng_tasks.integers(2**31)),
        noise_level=config.noise_level,
    )
    train_sets = [
        generate_task_data(
            task, config.adapt_samples_per_task, config.num_classes, config.image_size, rng_tasks
        )
        for task in tasks.shifted_tasks()
    ]
    eval_sets = []
    for task in tasks.shifted_tasks():
        support = generate_task_data(
            task, config.support_per_task, config.num_classes, config.image_size, rng_eval
        )
        query = generate_task_data(
            task, config.query_per_task, config.num_classes, config.image_size, rng_eval
        )
        eval_sets.append((support, query))
    return Table1SeedContext(
        seed=seed,
        state=state,
        extractor_state=extractor_state,
        train_sets=train_sets,
        eval_sets=eval_sets,
    )


def train_table1_model(
    config: Table1Config, context: Table1SeedContext, method: str
) -> Module:
    """Build and episodically adapt ``method``'s model on the seed's splits.

    The training half of :func:`run_table1_cell`, shared with the
    robustness grid (which trains once per ``(seed, method)`` and
    evaluates the resulting weights across every corruption cell).  All
    randomness derives from ``(context.seed, method)`` via
    :func:`method_rng`, so the trained weights are bit-identical wherever
    and whenever this runs.
    """
    rng = method_rng(config, context.seed, method)
    model = build_adapted_model(
        method, config, context.state, rng, extractor_state=context.extractor_state
    )
    _adapt(model, context.train_sets, config, rng)
    return model


def run_table1_cell(
    config: Table1Config, context: Table1SeedContext, method: str
) -> Table1Row:
    """One independent Table I cell: adapt ``method`` on the seed's splits.

    The cell's RNG is derived from ``(context.seed, method)`` alone, so
    executing cells in any order — or in separate processes — yields
    results bit-identical to the serial :func:`run_table1` loop.
    """
    model = train_table1_model(config, context, method)
    row = Table1Row(method=method)
    for k in config.ks:
        row.accuracy_by_k[k] = _knn_accuracy(
            model, context.eval_sets, k, config.knn_metric
        )
    return row


def run_table1(config: Table1Config, seed: int) -> dict[str, Table1Row]:
    """One full Table I run (all methods) at ``seed``.

    Every method sees the same pretrained weights, the same task
    distribution, the same adaptation stream order (per-method RNGs are
    spawned from the same root) and the same evaluation splits.  The
    parallel grid runner (:func:`repro.runtime.run_table1_grid`) executes
    the same :func:`prepare_table1_seed` + :func:`run_table1_cell`
    pipeline across processes, bit-identically.
    """
    context = prepare_table1_seed(config, seed)
    return {
        method: run_table1_cell(config, context, method)
        for method in config.methods
    }


def format_table1(rows_by_seed: list[dict[str, Table1Row]], config: Table1Config) -> str:
    """Render mean accuracies over seeds in the paper's row/column layout.

    Tolerates **partial** grids (the graceful-degradation path of
    ``repro table1``): a method with no completed cell renders as
    ``FAILED``, and a method missing from some seeds gets a ``*`` marker
    plus a footnote saying how many seeds its mean covers.
    """
    lines = [
        f"Backbone: {config.backbone}   (mean over {len(rows_by_seed)} seed(s))",
        "Method        " + "".join(f"  K={k:<6}" for k in config.ks),
    ]
    partial: list[str] = []
    for method in config.methods:
        present = [rows[method] for rows in rows_by_seed if method in rows]
        if not present:
            cells = [f"  {'FAILED':>7}" for __ in config.ks]
        else:
            marker = "*" if len(present) < len(rows_by_seed) else ""
            cells = [
                f"  {100 * float(np.mean([row.accuracy_by_k[k] for row in present])):6.2f}%{marker}"
                for k in config.ks
            ]
            if marker:
                partial.append(
                    f"  * {METHOD_LABELS[method]}: mean over "
                    f"{len(present)}/{len(rows_by_seed)} seeds "
                    f"({len(rows_by_seed) - len(present)} cell(s) failed)"
                )
        lines.append(f"{METHOD_LABELS[method]:<14}" + "".join(cells))
    lines.extend(partial)
    return "\n".join(lines)
