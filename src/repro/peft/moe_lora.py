"""MoE-LoRA baseline (Liu et al., 2023), feature-gated variant.

A mixture of LoRA experts combined by a per-sample softmax gate.  Like
MetaLoRA the gate is input-conditioned (the gate logits arrive through
:meth:`set_seed`, computed from extracted features), but the adaptation is
restricted to convex combinations of a few fixed experts rather than a
continuously generated seed — the architectural contrast the paper draws
with MOELoRA in Sec. I.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.ops import einsum, softmax, stack
from repro.autograd.tensor import Tensor
from repro.errors import AdapterError, ShapeError
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import ModuleList, Parameter
from repro.peft.base import Adapter
from repro.peft.multi_lora import _LinearBranch


class MoELoRALinear(Adapter):
    """Per-sample softmax mixture over ``experts`` LoRA branches."""

    is_meta = True

    def __init__(
        self,
        base: Linear,
        rank: int,
        experts: int = 4,
        alpha: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, Linear):
            raise AdapterError(f"MoELoRALinear wraps Linear, got {type(base).__name__}")
        if experts <= 0:
            raise AdapterError(f"experts must be positive, got {experts}")
        if rank <= 0:
            raise AdapterError(f"rank must be positive, got {rank}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.rank = rank
        self.experts = experts
        self.scaling = float(alpha if alpha is not None else rank) / rank
        self.expert_branches = ModuleList(
            [
                _LinearBranch(base.in_features, base.out_features, rank, rng)
                for __ in range(experts)
            ]
        )
        self.static_gate_logits = Parameter(init.zeros((experts,)))
        self._seed: Tensor | None = None

    @property
    def seed_shape(self) -> tuple[int, ...]:
        return (self.experts,)

    def set_seed(self, seed: Tensor | None) -> None:
        """Install per-sample gate logits of shape ``(N, experts)``."""
        if seed is not None and seed.shape[1:] != self.seed_shape:
            raise ShapeError(f"gate logits must be (N, {self.experts}), got {seed.shape}")
        self._seed = seed

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        squeeze = x.ndim == 2
        x3 = x.reshape(x.shape[0], 1, x.shape[1]) if squeeze else x
        deltas = [branch.delta(x3) for branch in self.expert_branches]
        if self._seed is None:
            gates = softmax(self.static_gate_logits.reshape(1, self.experts))
            gates = gates.reshape(1, 1, self.experts)
            mixed = deltas[0] * gates[:, :, 0]
            for k in range(1, self.experts):
                mixed = mixed + deltas[k] * gates[:, :, k]
        else:
            if self._seed.shape[0] != x.shape[0]:
                raise ShapeError(
                    f"gate batch {self._seed.shape[0]} != input batch {x.shape[0]}"
                )
            gates = softmax(self._seed)  # (N, experts)
            stacked = stack(deltas, axis=3)  # (N, T, O, K)
            mixed = einsum("ntok,nk->nto", stacked, gates)
        mixed = mixed * self.scaling
        if squeeze:
            mixed = mixed.reshape(x.shape[0], self.base.out_features)
        return out + mixed

    def extra_parameter_count(self) -> int:
        return self.static_gate_logits.size + sum(
            b.lora_a.size + b.lora_b.size for b in self.expert_branches
        )
