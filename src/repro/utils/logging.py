"""Library logging.

Library code never prints: progress goes through a shared ``repro``
logger so applications control verbosity.  ``enable_console_logging``
is the one-liner examples and the CLI use to see progress.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """The library logger, or a child of it (``get_logger("train")``)."""
    if name:
        return logging.getLogger(f"{_ROOT_NAME}.{name}")
    return logging.getLogger(_ROOT_NAME)


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler with a compact format (idempotent)."""
    logger = get_logger()
    logger.setLevel(level)
    if any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        return
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    logger.addHandler(handler)
