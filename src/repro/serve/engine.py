"""The single-tenant embedding service, as a wrapper over the tenant core.

:class:`EmbeddingEngine` keeps its original API — ``embed`` for
synchronous bulk extraction, ``submit`` for micro-batched singles, an
LRU result cache, ``stats()`` in the unified metrics-snapshot schema —
but is now a thin single-tenant view over
:class:`~repro.serve.registry.MultiTenantEngine`: the program it is
handed is mounted as the sole registry entry and every call delegates.
Metric names are unchanged (bare ``serve.*`` series; the wrapper turns
tenant labels off), so existing dashboards and tests read identically.

Engine caching moved from the module-level ``shared_engine`` /
``clear_shared_engines`` pair to an explicit :class:`Engines` handle;
the old functions remain as shims that emit ``DeprecationWarning`` and
delegate to the default :data:`ENGINES` handle.
"""

from __future__ import annotations

import warnings
import weakref
from concurrent.futures import Future

import numpy as np

from repro.errors import ServeError
from repro.nn.module import Module
from repro.serve.compile import CompiledProgram, compile_features
from repro.serve.registry import MultiTenantEngine

__all__ = [
    "EmbeddingEngine",
    "Engines",
    "ENGINES",
    "build_engine",
    "shared_engine",
    "clear_shared_engines",
]


class EmbeddingEngine:
    """Serve embeddings from one compiled ``features()`` program.

    A single-tenant wrapper over :class:`MultiTenantEngine`: the program
    is registered under one internal name and all traffic routes to it.
    Output is bit-identical to serving the program directly — the core
    runs the same program on the same batches.

    Parameters
    ----------
    program:
        The compiled program (see :func:`build_engine` for the usual
        model → program path).
    max_batch:
        Largest micro-batch the worker will coalesce.
    max_delay:
        Seconds the worker waits after the first queued sample for more
        to arrive before flushing the batch.
    cache_size:
        LRU result-cache capacity in entries; ``0`` disables caching.
    """

    _TENANT = "default"

    def __init__(
        self,
        program: CompiledProgram,
        *,
        max_batch: int = 32,
        max_delay: float = 0.002,
        cache_size: int = 256,
    ) -> None:
        self._core = MultiTenantEngine(
            max_batch=max_batch,
            max_delay=max_delay,
            cache_size=cache_size,
            tenant_labels=False,
        )
        self._core.registry.register_program(self._TENANT, program)
        self.program = program

    @property
    def precision(self) -> str:
        """The mounted program's precision tier (``f64``/``f32``/``int8``)."""
        return self.program.precision

    @property
    def max_batch(self) -> int:
        return self._core.max_batch

    @property
    def max_delay(self) -> float:
        return self._core.max_delay

    @property
    def cache_size(self) -> int:
        return self._core.cache_size

    def embed(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Embeddings for ``images``, chunked like ``extract_embeddings``.

        Chunk boundaries match the reference path's, so the result is
        bit-identical to it.  Rows are freshly allocated, so callers may
        mutate the result freely.
        """
        return self._core.embed(images, self._TENANT, batch_size=batch_size)

    def submit(self, sample: np.ndarray) -> "Future[np.ndarray]":
        """Queue one sample ``(C, H, W)``; resolves to its embedding row."""
        return self._core.submit(sample, self._TENANT)

    def stats(self) -> dict[str, dict]:
        """The engine's counters in the unified metrics-snapshot schema.

        Keys are the ``serve.*`` metric names; each value carries
        ``kind`` / ``calls`` / ``seconds`` / ``bytes`` plus ``buckets``
        for the batch-size histogram and ``value`` for the
        ``serve.cache.size`` occupancy gauge (set at snapshot time).
        See ``docs/observability.md``.
        """
        return self._core.stats()

    def close(self) -> None:
        """Stop the worker (after draining queued work) and reject new calls."""
        self._core.close()

    def __enter__(self) -> "EmbeddingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def build_engine(
    model_or_result: object,
    *,
    merge: bool = True,
    max_batch: int = 32,
    max_delay: float = 0.002,
    cache_size: int = 256,
    precision: str | None = None,
) -> EmbeddingEngine:
    """Compile a model (or an ``AttachResult``) into a ready engine.

    Given an :class:`~repro.peft.api.AttachResult` holding static adapters,
    ``merge=True`` (default) bakes the adapter deltas into the base weights
    via ``AttachResult.merge()`` before compiling — the served program then
    contains no adapter ops at all.  Meta adapters cannot merge; they
    compile to their pre-planned einsum fast paths instead.  ``precision``
    picks the tier (explicit, else ``REPRO_SERVE_PRECISION``, else ``f64``).
    """
    model = model_or_result
    if not isinstance(model, Module):
        serving_model = getattr(model, "serving_model", None)
        if serving_model is None:
            raise ServeError(
                f"build_engine expects a Module or AttachResult, "
                f"got {type(model_or_result).__name__}"
            )
        if not callable(serving_model):
            raise ServeError(
                f"build_engine: {type(model_or_result).__name__}.serving_model is "
                f"{type(serving_model).__name__}, not callable"
            )
        model = serving_model(merge=merge)
        if not isinstance(model, Module):
            raise ServeError(
                f"build_engine: serving_model() on "
                f"{type(model_or_result).__name__} returned "
                f"{type(model).__name__}, not a Module"
            )
    program = compile_features(model, precision=precision)
    return EmbeddingEngine(
        program, max_batch=max_batch, max_delay=max_delay, cache_size=cache_size
    )


class Engines:
    """An explicit handle over per-model cached engines.

    One lazily-built :class:`EmbeddingEngine` per model, weakly keyed:
    dropping the model drops its engine.  Weights mutated after
    compilation are not picked up — :meth:`clear` (or dropping the
    model) forces recompilation.  This replaces the module-level
    ``shared_engine`` / ``clear_shared_engines`` globals with something
    callers can own, scope and close.
    """

    def __init__(
        self,
        *,
        cache_size: int = 0,
        max_batch: int = 32,
        max_delay: float = 0.002,
        precision: str | None = None,
    ) -> None:
        self._engines: "weakref.WeakKeyDictionary[Module, EmbeddingEngine]" = (
            weakref.WeakKeyDictionary()
        )
        self._build_kwargs = {
            "cache_size": cache_size,
            "max_batch": max_batch,
            "max_delay": max_delay,
            "precision": precision,
        }

    def get(self, model: Module) -> EmbeddingEngine:
        """The cached engine for ``model``, compiling on first use."""
        engine = self._engines.get(model)
        if engine is None:
            engine = self._engines[model] = build_engine(model, **self._build_kwargs)
        return engine

    def clear(self) -> None:
        """Drop every cached engine (forces recompilation on next use)."""
        for engine in list(self._engines.values()):
            engine.close()
        self._engines.clear()

    def __len__(self) -> int:
        return len(self._engines)

    def __contains__(self, model: Module) -> bool:
        return model in self._engines


#: Default handle for the flag-gated protocol path
#: (``FLAGS.serve_embeddings``); result caching off, as before.  The
#: tier is pinned to f64 — routing ``extract_embeddings`` through the
#: engine is contracted bit-identical to the autograd path, and must
#: stay so even when ``REPRO_SERVE_PRECISION`` relaxes serving tiers.
ENGINES = Engines(cache_size=0, precision="f64")


def shared_engine(model: Module) -> EmbeddingEngine:
    """Deprecated alias for ``ENGINES.get(model)``."""
    warnings.warn(
        "shared_engine() is deprecated; use repro.serve.ENGINES.get(model) "
        "(or your own Engines handle)",
        DeprecationWarning,
        stacklevel=2,
    )
    return ENGINES.get(model)


def clear_shared_engines() -> None:
    """Deprecated alias for ``ENGINES.clear()``."""
    warnings.warn(
        "clear_shared_engines() is deprecated; use repro.serve.ENGINES.clear() "
        "(or your own Engines handle)",
        DeprecationWarning,
        stacklevel=2,
    )
    ENGINES.clear()
