"""Tests for adaptive rank selection."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensornet import (
    random_tt,
    suggest_adapter_rank,
    tr_decompose_adaptive,
    tt_decompose_adaptive,
    tt_to_tensor,
    tr_to_tensor,
)


class TestAdaptiveTT:
    def test_error_bound_honored(self, rng):
        x = rng.normal(size=(6, 7, 8))
        for epsilon in (0.1, 0.3, 0.5):
            tt = tt_decompose_adaptive(x, epsilon)
            err = np.linalg.norm(tt_to_tensor(tt) - x) / np.linalg.norm(x)
            assert err <= epsilon + 1e-10, epsilon

    def test_zero_epsilon_is_exact(self, rng):
        x = rng.normal(size=(4, 5, 6))
        tt = tt_decompose_adaptive(x, 0.0)
        assert np.allclose(tt_to_tensor(tt), x, atol=1e-8)

    def test_looser_budget_smaller_ranks(self, rng):
        x = rng.normal(size=(6, 6, 6))
        tight = tt_decompose_adaptive(x, 0.05)
        loose = tt_decompose_adaptive(x, 0.6)
        assert sum(loose.ranks) <= sum(tight.ranks)

    def test_low_rank_input_gets_low_ranks(self, rng):
        low = tt_to_tensor(random_tt((6, 6, 6), 2, rng))
        tt = tt_decompose_adaptive(low, 0.01)
        assert all(r <= 4 for r in tt.ranks)

    def test_max_rank_cap(self, rng):
        x = rng.normal(size=(8, 8, 8))
        tt = tt_decompose_adaptive(x, 0.0, max_rank=3)
        assert all(r <= 3 for r in tt.ranks)

    def test_validation(self, rng):
        with pytest.raises(ShapeError):
            tt_decompose_adaptive(rng.normal(size=(3, 3)), epsilon=1.0)
        with pytest.raises(ShapeError):
            tt_decompose_adaptive(rng.normal(size=5), epsilon=0.1)


class TestAdaptiveTR:
    def test_produces_valid_ring(self, rng):
        x = rng.normal(size=(4, 5, 6))
        tr = tr_decompose_adaptive(x, 0.2)
        err = np.linalg.norm(tr_to_tensor(tr) - x) / np.linalg.norm(x)
        assert err <= 0.2 + 1e-10


class TestSuggestAdapterRank:
    def test_low_rank_weight_gets_small_suggestion(self, rng):
        u = rng.normal(size=(16, 2))
        v = rng.normal(size=(2, 12))
        rank = suggest_adapter_rank(u @ v, epsilon=0.05)
        assert rank <= 3

    def test_full_rank_weight_hits_cap(self, rng):
        weight = rng.normal(size=(16, 16))
        assert suggest_adapter_rank(weight, epsilon=0.01, max_rank=4) == 4

    def test_accepts_conv_tensors(self, rng):
        weight = rng.normal(size=(3, 3, 8, 16))
        rank = suggest_adapter_rank(weight, epsilon=0.3)
        assert 1 <= rank <= 16
