"""Neural-network layers built on the autograd engine."""

from repro.nn.module import Module, ModuleList, Parameter, eval_mode
from repro.nn.activations import GELU, ReLU, Sigmoid, Tanh
from repro.nn.container import Sequential
from repro.nn.conv import Conv2d
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.norm import BatchNorm2d, LayerNorm
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.summary import summarize
from repro.nn import init

__all__ = [
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "GELU",
    "GlobalAvgPool2d",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "Module",
    "ModuleList",
    "Parameter",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "eval_mode",
    "init",
    "summarize",
]
