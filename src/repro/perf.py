"""Performance-path feature flags.

Every optimization added on top of the reference implementation (einsum
plan caching, optimal contraction ordering, im2col patch caching, batched
meta-seed generation) is guarded by a flag here so the two paths can be
A/B-tested: the reference path is the original, straight-line code; the
optimized path must match it numerically (see ``tests/autograd`` and
``tests/peft``) and is what ships by default.

Flags initialize from the environment:

- ``REPRO_PERF=off`` (or ``reference``) disables every optimization;
- ``REPRO_EINSUM_PLAN_CACHE=0``, ``REPRO_EINSUM_OPTIMIZE=0``,
  ``REPRO_CONV_PATCHES_CACHE=0``, ``REPRO_CONV_PAD_WORKSPACE=0``,
  ``REPRO_BATCHED_SEEDS=0``, ``REPRO_BACKWARD_INPLACE_ACCUM=0`` disable
  individual paths;
- ``REPRO_BACKWARD_RELEASE=1`` opts in to the backward memory diet
  (graph metadata is dropped as ``backward()`` consumes it; see
  :meth:`repro.autograd.tensor.Tensor.backward`).  Off by default because
  it trades the ability to re-run ``backward()`` on the same graph for a
  smaller peak footprint; the parallel experiment runtime enables it per
  worker, where graphs are never reused.

Programmatic control uses :func:`perf_overrides` (a context manager), which
the benchmark harness relies on to time reference vs. optimized runs in the
same process.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, fields
from typing import Iterator


def _env_bool(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no", "")


@dataclass
class PerfFlags:
    """Which optimized paths are active.

    ``einsum_plan_cache`` memoizes spec parsing and gradient-spec
    derivation — bit-identical to the reference path.
    ``einsum_optimize`` additionally contracts >=3-operand einsums in the
    optimal pairwise order — numerically equivalent but not bit-identical
    (floating-point summation order changes).
    ``backward_inplace_accum`` accumulates multi-consumer gradients into a
    sweep-owned buffer with ``np.add(..., out=...)`` — bit-identical (the
    in-place path only triggers once the buffer is private and dtypes
    match).
    ``backward_release`` frees graph metadata (parents + grad closures,
    and with them the captured activations) as the backward sweep consumes
    each node.  Bit-identical per sweep, but a released graph cannot be
    backpropagated again — hence opt-in.
    """

    einsum_plan_cache: bool = True
    einsum_optimize: bool = True
    conv_patches_cache: bool = True
    conv_pad_workspace: bool = True
    batched_seeds: bool = True
    backward_inplace_accum: bool = True
    backward_release: bool = False


def _from_env() -> PerfFlags:
    if os.environ.get("REPRO_PERF", "").strip().lower() in ("off", "reference", "0"):
        return PerfFlags(**{f.name: False for f in fields(PerfFlags)})
    return PerfFlags(
        einsum_plan_cache=_env_bool("REPRO_EINSUM_PLAN_CACHE", True),
        einsum_optimize=_env_bool("REPRO_EINSUM_OPTIMIZE", True),
        conv_patches_cache=_env_bool("REPRO_CONV_PATCHES_CACHE", True),
        conv_pad_workspace=_env_bool("REPRO_CONV_PAD_WORKSPACE", True),
        batched_seeds=_env_bool("REPRO_BATCHED_SEEDS", True),
        backward_inplace_accum=_env_bool("REPRO_BACKWARD_INPLACE_ACCUM", True),
        backward_release=_env_bool("REPRO_BACKWARD_RELEASE", False),
    )


#: Process-wide flag singleton; mutate via :func:`perf_overrides`.
FLAGS = _from_env()


@contextlib.contextmanager
def perf_overrides(**overrides: bool) -> Iterator[PerfFlags]:
    """Temporarily override flags by name (restores previous values on exit).

    >>> from repro.perf import FLAGS, perf_overrides
    >>> with perf_overrides(einsum_plan_cache=False):
    ...     assert not FLAGS.einsum_plan_cache
    >>> FLAGS.einsum_plan_cache
    True
    """
    valid = {f.name for f in fields(PerfFlags)}
    unknown = set(overrides) - valid
    if unknown:
        raise ValueError(f"unknown perf flags: {sorted(unknown)}; valid: {sorted(valid)}")
    previous = {name: getattr(FLAGS, name) for name in overrides}
    for name, value in overrides.items():
        setattr(FLAGS, name, bool(value))
    try:
        yield FLAGS
    finally:
        for name, value in previous.items():
            setattr(FLAGS, name, value)


@contextlib.contextmanager
def reference_mode() -> Iterator[PerfFlags]:
    """Run the block with every optimization disabled (the reference path)."""
    with perf_overrides(**{f.name: False for f in fields(PerfFlags)}) as flags:
        yield flags
