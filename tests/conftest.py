"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng64() -> np.random.Generator:
    """Alias kept for tests that draw float64 samples for grad checks."""
    return np.random.default_rng(54321)
