"""Tests for Linear, Conv2d, norms, activations, pooling, dropout, init."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ShapeError
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    GELU,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    init,
)


class TestLinear:
    def test_affine_map(self, rng):
        layer = Linear(3, 4, rng=rng)
        x = Tensor(rng.normal(size=(5, 3)).astype(np.float32))
        out = layer(x)
        assert out.shape == (5, 4)
        assert np.allclose(out.data, x.data @ layer.weight.data + layer.bias.data, atol=1e-5)

    def test_no_bias(self, rng):
        layer = Linear(3, 4, bias=False, rng=rng)
        assert layer.bias is None
        assert layer.parameter_count() == 12

    def test_3d_input(self, rng):
        layer = Linear(3, 4, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 7, 3)).astype(np.float32)))
        assert out.shape == (2, 7, 4)

    def test_dim_validation(self, rng):
        with pytest.raises(ShapeError):
            Linear(0, 3)
        layer = Linear(3, 4, rng=rng)
        with pytest.raises(ShapeError):
            layer(Tensor(np.zeros((2, 5), dtype=np.float32)))

    def test_deterministic_init_from_rng(self):
        a = Linear(3, 4, rng=np.random.default_rng(0))
        b = Linear(3, 4, rng=np.random.default_rng(0))
        assert np.allclose(a.weight.data, b.weight.data)


class TestConv2d:
    def test_shape_and_layout(self, rng):
        conv = Conv2d(3, 8, 3, padding=1, rng=rng)
        assert conv.weight.shape == (3, 3, 3, 8)  # (K, K, I, O) — paper layout
        out = conv(Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 8, 8, 8)

    def test_stride(self, rng):
        conv = Conv2d(3, 4, 3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(1, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (1, 4, 4, 4)

    def test_invalid_kernel(self):
        with pytest.raises(ShapeError):
            Conv2d(3, 4, 0)


class TestBatchNorm:
    def test_normalizes_in_train_mode(self, rng):
        bn = BatchNorm2d(4)
        x = Tensor((rng.normal(size=(8, 4, 5, 5)) * 3 + 2).astype(np.float32))
        out = bn(x)
        assert abs(float(out.data.mean())) < 1e-4
        assert float(out.data.std()) == pytest.approx(1.0, abs=0.01)

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor((rng.normal(size=(16, 2, 4, 4)) + 5).astype(np.float32))
        bn(x)
        assert np.all(bn._buffers["running_mean"] > 1.0)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)).astype(np.float32))
        bn(x)
        bn.eval()
        y1 = bn(x).data
        y2 = bn(x).data
        assert np.allclose(y1, y2)

    def test_shape_validation(self):
        bn = BatchNorm2d(3)
        with pytest.raises(ShapeError):
            bn(Tensor(np.zeros((2, 4, 3, 3), dtype=np.float32)))


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        ln = LayerNorm(16)
        x = Tensor((rng.normal(size=(4, 7, 16)) * 5 + 3).astype(np.float32))
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1.0, atol=0.01)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            LayerNorm(8)(Tensor(np.zeros((2, 7), dtype=np.float32)))

    def test_gamma_beta_applied(self, rng):
        ln = LayerNorm(4)
        ln.gamma.data[...] = 2.0
        ln.beta.data[...] = 1.0
        x = Tensor(rng.normal(size=(3, 4)).astype(np.float32))
        out = ln(x).data
        assert out.mean() == pytest.approx(1.0, abs=0.01)


class TestActivationsAndPooling:
    def test_activation_layers_forward(self, rng):
        x = Tensor(rng.normal(size=(3, 5)).astype(np.float32))
        assert np.all(ReLU()(x).data >= 0)
        assert np.all(np.abs(Tanh()(x).data) <= 1)
        assert np.all((Sigmoid()(x).data > 0) & (Sigmoid()(x).data < 1))
        assert GELU()(x).shape == (3, 5)

    def test_pooling_layers(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert MaxPool2d(2)(x).shape == (2, 3, 4, 4)
        assert AvgPool2d(4)(x).shape == (2, 3, 2, 2)
        assert GlobalAvgPool2d()(x).shape == (2, 3)

    def test_global_pool_value(self):
        x = Tensor(np.ones((1, 2, 4, 4), dtype=np.float32) * 3)
        assert np.allclose(GlobalAvgPool2d()(x).data, 3.0)


class TestDropoutLayer:
    def test_eval_identity(self):
        d = Dropout(0.5, seed=0)
        d.eval()
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        assert np.allclose(d(x).data, 1.0)

    def test_train_drops(self):
        d = Dropout(0.5, seed=0)
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        out = d(x).data
        assert (out == 0).mean() == pytest.approx(0.5, abs=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestSequential:
    def test_applies_in_order(self, rng):
        net = Sequential(Linear(3, 5, rng=rng), ReLU(), Linear(5, 2, rng=rng))
        out = net(Tensor(rng.normal(size=(4, 3)).astype(np.float32)))
        assert out.shape == (4, 2)
        assert len(net) == 3

    def test_iteration_and_indexing(self, rng):
        net = Sequential(Linear(3, 5, rng=rng), ReLU())
        assert type(net[1]).__name__ == "ReLU"
        assert [type(m).__name__ for m in net] == ["Linear", "ReLU"]


class TestInit:
    def test_kaiming_bound(self, rng):
        w = init.kaiming_uniform(rng, (100, 100), fan_in=100)
        bound = np.sqrt(6.0 / 100)
        assert np.all(np.abs(w) <= bound)
        assert w.std() > bound / 3

    def test_xavier_bound(self, rng):
        w = init.xavier_uniform(rng, (50, 50), fan_in=50, fan_out=50)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 100))

    def test_invalid_fan_in(self, rng):
        with pytest.raises(ValueError):
            init.kaiming_uniform(rng, (3, 3), fan_in=0)

    def test_zeros_ones(self):
        assert np.all(init.zeros((3,)) == 0)
        assert np.all(init.ones((3,)) == 1)

    def test_normal_std(self, rng):
        w = init.normal(rng, (200, 200), std=0.02)
        assert w.std() == pytest.approx(0.02, rel=0.05)
