"""Tests for deterministic fault injection, retry/backoff and soft timeouts.

``REPRO_FAULTS`` turns the pool's failure handling into something
testable: a fault spec makes chosen cells crash or stall as a pure
function of ``(key, attempt)``, so every recovery path — retry, backoff,
timeout, exhaustion — is exercised deterministically.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    CellTimeoutError,
    ConfigError,
    FaultInjected,
    WorkerError,
)
from repro.perf import (
    DEFAULT_STALL_SECONDS,
    FAULTS_ENV,
    FaultSpec,
    fire_faults,
    parse_faults,
    render_fault_key,
)
from repro.runtime.pool import raise_failures, run_cells
from repro.utils.profiling import PROFILER, profiled


def _double(cell):
    return cell * 2


class TestParseFaults:
    def test_single_crash_spec(self):
        assert parse_faults("crash:0/lora") == (
            FaultSpec(kind="crash", key="0/lora"),
        )

    def test_full_stall_spec(self):
        (spec,) = parse_faults("stall:7:2:0.25")
        assert spec == FaultSpec(kind="stall", key="7", times=2, seconds=0.25)

    def test_defaults(self):
        (spec,) = parse_faults("stall:*")
        assert spec.times == -1
        assert spec.seconds == DEFAULT_STALL_SECONDS

    def test_multiple_specs(self):
        specs = parse_faults("crash:a; stall:b:1")
        assert [s.kind for s in specs] == ["crash", "stall"]

    def test_empty_chunks_skipped(self):
        assert parse_faults(" ; ;crash:a;") == (FaultSpec(kind="crash", key="a"),)

    @pytest.mark.parametrize(
        "raw",
        ["boom:a", "crash", "crash:", "crash:a:x", "stall:a:1:x", "stall:a:1:-1"],
    )
    def test_junk_rejected(self, raw):
        with pytest.raises(ConfigError):
            parse_faults(raw)


class TestFaultSpec:
    def test_wildcard_matches_everything(self):
        spec = FaultSpec(kind="crash", key="*")
        assert spec.matches("anything", 0)

    def test_transient_fires_only_on_early_attempts(self):
        spec = FaultSpec(kind="crash", key="k", times=2)
        assert spec.matches("k", 0)
        assert spec.matches("k", 1)
        assert not spec.matches("k", 2)

    def test_permanent_fires_on_every_attempt(self):
        spec = FaultSpec(kind="crash", key="k")
        assert spec.matches("k", 99)

    def test_tuple_keys_render_with_slashes(self):
        assert render_fault_key((0, "lora")) == "0/lora"
        assert render_fault_key("plain") == "plain"


class TestFireFaults:
    def test_noop_when_nothing_armed(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        fire_faults(("any", "key"))

    def test_crash_raises_fault_injected(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash:0/lora")
        with pytest.raises(FaultInjected, match="0/lora"):
            fire_faults((0, "lora"))

    def test_other_keys_unaffected(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash:0/lora")
        fire_faults((1, "lora"))


class TestRetry:
    def test_transient_fault_recovers_without_surfacing(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash:3:1")  # first attempt only
        results = run_cells(_double, [2, 3, 4], max_retries=1, retry_backoff=0.0)
        assert [r.value for r in results] == [4, 6, 8]
        assert [r.attempts for r in results] == [1, 2, 1]
        raise_failures(results)  # nothing surfaced

    def test_exhaustion_surfaces_the_final_failure(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash:3")  # permanent
        results = run_cells(_double, [2, 3], max_retries=2, retry_backoff=0.0)
        failed = results[1]
        assert not failed.ok
        assert failed.attempts == 3
        assert failed.failure.error_type == "FaultInjected"
        with pytest.raises(WorkerError, match="FaultInjected"):
            raise_failures(results)

    def test_retry_counters(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash:3:1; crash:4")
        with profiled() as profiler:
            profiler.reset()
            run_cells(_double, [3, 4], max_retries=2, retry_backoff=0.0)
            counters = profiler.as_dict()
        # Round 1 retries both failed cells, round 2 retries the permanent one.
        assert counters["retry.attempt"]["calls"] == 3
        assert counters["retry.backoff"]["calls"] == 2
        assert counters["retry.recovered"]["calls"] == 1
        assert counters["retry.exhausted"]["calls"] == 1
        assert counters["faults.crash"]["calls"] == 4

    def test_no_retries_by_default(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash:3:1")
        results = run_cells(_double, [3])
        assert not results[0].ok
        assert results[0].attempts == 1

    def test_backoff_is_exponential(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash:3")
        with profiled() as profiler:
            profiler.reset()
            run_cells(_double, [3], max_retries=3, retry_backoff=0.001)
            counters = profiler.as_dict()
        # 0.001 + 0.002 + 0.004 between the four attempts.
        assert counters["retry.backoff"]["seconds"] == pytest.approx(0.007)

    def test_negative_knobs_rejected(self):
        with pytest.raises(ConfigError, match="max_retries"):
            run_cells(_double, [1], max_retries=-1)
        with pytest.raises(ConfigError, match="retry_backoff"):
            run_cells(_double, [1], retry_backoff=-0.1)


class TestTimeout:
    def test_stalled_cell_becomes_a_cell_failure(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "stall:3:-1:30")
        with profiled() as profiler:
            profiler.reset()
            results = run_cells(_double, [2, 3], cell_timeout=0.2)
            counters = profiler.as_dict()
        ok, stalled = results
        assert ok.value == 4
        assert not stalled.ok
        assert stalled.failure.error_type == CellTimeoutError.__name__
        assert "0.2s soft timeout" in stalled.failure.message
        assert counters["timeout.cell"]["calls"] == 1

    def test_timed_out_cell_is_retryable(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "stall:3:1:30")  # stalls first attempt only
        results = run_cells(
            _double, [3], cell_timeout=0.2, max_retries=1, retry_backoff=0.0
        )
        assert results[0].ok
        assert results[0].value == 6
        assert results[0].attempts == 2

    def test_no_timeout_by_default(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "stall:3:-1:0.05")  # brief stall, no limit
        results = run_cells(_double, [3])
        assert results[0].ok


class TestStreaming:
    def test_on_result_fires_once_per_final_outcome(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash:3:1; crash:4")
        seen = []
        run_cells(
            _double,
            [2, 3, 4],
            max_retries=1,
            retry_backoff=0.0,
            on_result=lambda result: seen.append((result.key, result.ok)),
        )
        assert sorted(seen) == [(2, True), (3, True), (4, False)]

    def test_successes_stream_before_the_batch_finishes(self):
        order = []

        def spy(result):
            order.append(result.key)

        run_cells(_double, [1, 2, 3], on_result=spy)
        assert order == [1, 2, 3]
