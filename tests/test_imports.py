"""Import smoke test: every module in the package imports cleanly and the
public API surfaces declared in ``__all__`` actually exist."""

import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for __, name, ___ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if name != "repro.__main__"  # executes the CLI on import, by design
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize(
    "package_name",
    [
        "repro",
        "repro.autograd",
        "repro.nn",
        "repro.models",
        "repro.tensornet",
        "repro.peft",
        "repro.data",
        "repro.train",
        "repro.eval",
        "repro.utils",
    ],
)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} has no __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_no_module_shadows_stdlib():
    suspicious = {"logging", "json", "types"}
    top_level = {name.split(".")[1] for name in MODULES if name.count(".") == 1}
    # Submodules may reuse stdlib names (repro.utils.logging) — that is
    # fine under a package; only top-level shadowing would be a problem.
    assert not (top_level & suspicious)
