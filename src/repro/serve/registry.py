"""Multi-tenant adapter serving: named adapters behind one engine.

One serving process, many tasks: :class:`AdapterRegistry` manages *named*
adapters — register, hot-swap, evict at runtime — on top of
``peft.attach`` / ``AttachResult.serving_model()``, and
:class:`MultiTenantEngine` serves them behind the unified typed API
(``serve(ServeRequest(...))`` synchronously, ``enqueue(...)`` through
the micro-batcher; the pre-redesign ``submit``/``embed``/``dispatch``
forms survive as deprecated shims).

Three design points carry the throughput story:

- **Program sharing.**  Compiled slot-programs live in a process-wide-ish
  LRU (:class:`ProgramCache`) keyed by :class:`ProgramKey` — a
  ``(backbone_digest, families, ranks, weights_digest)`` tuple built from
  :func:`repro.peft.checkpoint.state_digest`, the same function checkpoint
  manifests and ``AttachResult.digest()`` use.  Tenants whose merged
  static graphs coincide share one program; counters
  ``serve.program_cache.{hit,miss,evict}`` record the traffic.

- **Split compilation for MetaLoRA tenants.**  A seed-slot tenant
  compiles to *three* programs — extractor (``x → features``), mapping
  (``features → stacked seeds``) and body (``(x, seeds) → embeddings``) —
  keyed independently, so tenants sharing a backbone+extractor but
  trained to different mapping weights share two of the three.

- **Heterogeneous micro-batching.**  The dispatcher groups queued
  requests by adapter: static tenants sharing a program are stacked into
  one run, and seed-slot tenants sharing a body are stacked *across
  tenants* — extractor once over the union, mapping per tenant (its
  float64 GEMMs are the one stage whose BLAS results depend on row
  count, so per-tenant batches keep rows bit-identical to single-tenant
  serving), then one body run consuming every tenant's seeds.

Metrics mirror :class:`~repro.serve.engine.EmbeddingEngine`'s
(``serve.requests``, ``serve.batches``, ``serve.batch.size``,
``serve.queue_wait``, ``serve.cache.*``, ``serve.run``), with two
additions: a ``serve.batch.tenants`` histogram (distinct adapters per
dispatch group) and — when ``tenant_labels`` is on — a ``{tenant=name}``
labeled twin of each per-request series next to the bare aggregate.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ServeError
from repro.nn.module import Module
from repro.obs import OBS, TRACER
from repro.obs.metrics import MetricsRegistry
from repro.peft.meta_model import MetaLoRAModel
from repro.serve.api import (
    DEADLINE_MISSED,
    ERROR,
    ServeRequest,
    ServeResult,
    Timings,
    ingest_sample as _ingest,
)
from repro.serve.compile import (
    CompiledProgram,
    compile_features,
    compile_forward,
    compile_seed_mapping,
)
from repro.serve.optimize import resolve_precision

#: Label used on ``serve.run`` when one program execution serves rows
#: from more than one tenant (the cross-tenant stacked runs).
SHARED_TENANT = "(shared)"

#: ``serve.*`` series the engines promise to expose even at zero, so
#: dashboards and ``BENCH_*.json`` counter sections never miss a name.
#: ``serve.request.rejected`` is recorded by admission control (the
#: frontend scheduler); the other two by the engine's queue path.
ZERO_SERIES = {
    "serve.request.rejected": {"kind": "counter", "calls": 0},
    "serve.request.deadline_missed": {"kind": "counter", "calls": 0},
    "serve.queue.depth": {"kind": "histogram", "calls": 0, "buckets": {}},
}


def _digest(array: np.ndarray) -> bytes:
    """Content digest for the result cache (shape + dtype + bytes)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(repr((array.shape, array.dtype.str)).encode())
    h.update(np.ascontiguousarray(array).tobytes())
    return h.digest()


class _Request:
    """One queued unit of work: the typed request plus engine bookkeeping.

    ``adapter`` is the *resolved* tenant name (``request.adapter`` may be
    ``None`` when a default adapter filled it in); ``future`` resolves to
    a :class:`~repro.serve.api.ServeResult` — the queue path never sets
    exceptions for serving outcomes, only results with a status.
    """

    __slots__ = ("request", "adapter", "key", "future", "enqueued_at")

    def __init__(
        self,
        request: ServeRequest,
        adapter: str,
        key: tuple | None,
        future: "Future[ServeResult]",
    ) -> None:
        self.request = request
        self.adapter = adapter
        self.key = key
        self.future = future
        self.enqueued_at = time.perf_counter()


def _legacy_future(result_future: "Future[ServeResult]") -> "Future[np.ndarray]":
    """Adapt ``Future[ServeResult]`` to the old ``Future[np.ndarray]`` contract.

    Pre-redesign futures resolved to the raw embedding row and carried
    serving failures as exceptions; the adapter re-raises any non-``ok``
    result as the typed :class:`ServeError` that ``require()`` produces.
    """
    legacy: "Future[np.ndarray]" = Future()

    def _transfer(done: "Future[ServeResult]") -> None:
        try:
            legacy.set_result(done.result().require())
        except BaseException as exc:
            legacy.set_exception(exc)

    result_future.add_done_callback(_transfer)
    return legacy


# -- program identity ---------------------------------------------------------


class ProgramKey(tuple):
    """Identity of one compiled slot-program.

    A ``(backbone, families, ranks, weights, precision)`` tuple: the
    architecture digest (module-tree class names + state shapes/dtypes,
    prefixed with the program role), the adapter families and ranks
    present, the :func:`~repro.peft.checkpoint.state_digest` of the
    weights the program folds, and the precision tier the program was
    compiled at.  Equal keys ⇒ compiling would produce programs with
    identical outputs, so the cache may hand out one program to many
    tenants; byte-identical tenants compiled at *different* tiers get
    distinct keys (an f32 tenant must never be served an f64 program and
    vice versa).
    """

    __slots__ = ()

    def __new__(
        cls,
        backbone: str,
        families: tuple[str, ...],
        ranks: tuple[int, ...],
        weights: str,
        precision: str = "f64",
    ) -> "ProgramKey":
        return tuple.__new__(
            cls,
            (backbone, tuple(families), tuple(ranks), weights, str(precision)),
        )

    @property
    def backbone(self) -> str:
        return self[0]

    @property
    def families(self) -> tuple[str, ...]:
        return self[1]

    @property
    def ranks(self) -> tuple[int, ...]:
        return self[2]

    @property
    def weights(self) -> str:
        return self[3]

    @property
    def precision(self) -> str:
        return self[4]


def _architecture_digest(role: str, model: Module, state: Mapping[str, np.ndarray]) -> str:
    hasher = hashlib.sha256()
    for name, module in model.named_modules():
        hasher.update(f"{name}={type(module).__name__};".encode())
    for name in sorted(state):
        array = np.asarray(state[name])
        hasher.update(f"{name}:{array.shape}:{array.dtype.str};".encode())
    return f"{role}:{hasher.hexdigest()}"


def program_key(
    model: Module,
    *,
    role: str = "features",
    extra: Mapping | None = None,
    precision: str | None = None,
) -> ProgramKey:
    """The :class:`ProgramKey` compiling ``model`` (in ``role``) would get.

    ``extra`` folds additional compile-time inputs into the weights
    digest — e.g. the mapping programs fold ``FLAGS.batched_seeds``,
    which freezes the seed-generation strategy at compile time.
    ``precision`` resolves like the compile entry points (explicit tier,
    else ``REPRO_SERVE_PRECISION``, else ``f64``).
    """
    from repro.peft.checkpoint import _adapter_meta, state_digest

    state = model.state_dict()
    meta = _adapter_meta(model)
    payload = dict(meta)
    if extra:
        payload.update(extra)
    return ProgramKey(
        backbone=_architecture_digest(role, model, state),
        families=tuple(meta["families"]),
        ranks=tuple(int(rank) for rank in meta["ranks"]),
        weights=state_digest(state, extra=payload),
        precision=resolve_precision(precision),
    )


def _mapping_key(model: MetaLoRAModel, precision: str | None = None) -> ProgramKey:
    """Key for the mapping program: trunk + heads + gains only.

    Deliberately excludes the backbone and extractor, so tenants that
    share them but were trained to different mapping weights get
    distinct mapping programs while sharing the other two.
    """
    from repro.peft.checkpoint import state_digest
    from repro.perf import FLAGS

    state: dict[str, np.ndarray] = {"head_gains": model.head_gains.data}
    for name, param in model.trunk.named_parameters():
        state[f"trunk.{name}"] = param.data
    for name, param in model.heads.named_parameters():
        state[f"heads.{name}"] = param.data
    hasher = hashlib.sha256()
    for name in sorted(state):
        array = state[name]
        hasher.update(f"{name}:{array.shape}:{array.dtype.str};".encode())
    return ProgramKey(
        backbone=f"mapping:{hasher.hexdigest()}",
        families=(),
        ranks=(),
        weights=state_digest(state, extra={"batched_seeds": bool(FLAGS.batched_seeds)}),
        precision=resolve_precision(precision),
    )


# -- the compiled-program LRU -------------------------------------------------


class ProgramCache:
    """LRU of compiled slot-programs keyed by :class:`ProgramKey`.

    ``get`` compiles on miss; tenants whose keys coincide receive the
    *same* program object, which is what lets the dispatcher stack their
    requests into one run (grouping is by program identity).  Counters:
    ``serve.program_cache.hit`` / ``.miss`` / ``.evict``.
    """

    def __init__(self, capacity: int = 64, metrics: MetricsRegistry | None = None) -> None:
        if capacity < 1:
            raise ServeError(f"program cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._programs: "OrderedDict[ProgramKey, CompiledProgram]" = OrderedDict()
        self._metrics = metrics if metrics is not None else MetricsRegistry(enabled=True)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._programs)

    def __contains__(self, key: ProgramKey) -> bool:
        with self._lock:
            return key in self._programs

    def _count(self, name: str, precision: str | None = None) -> None:
        """Bare counter plus a ``{precision=tier}`` labeled twin.

        The bare series keeps the pre-tier exact-count contract; the
        labeled twin splits the same traffic by precision tier.
        """
        self._metrics.inc(name)
        OBS.enabled and OBS.inc(name)
        if precision is not None:
            self._metrics.inc(name, precision=precision)
            OBS.enabled and OBS.inc(name, precision=precision)

    def get(self, key: ProgramKey, compile_fn: Callable[[], CompiledProgram]) -> CompiledProgram:
        precision = getattr(key, "precision", None)
        with self._lock:
            program = self._programs.get(key)
            if program is not None:
                self._programs.move_to_end(key)
                self._count("serve.program_cache.hit", precision)
                return program
            self._count("serve.program_cache.miss", precision)
            program = compile_fn()
            self._programs[key] = program
            while len(self._programs) > self.capacity:
                evicted_key, __ = self._programs.popitem(last=False)
                self._count(
                    "serve.program_cache.evict",
                    getattr(evicted_key, "precision", None),
                )
            return program

    def stats(self) -> dict[str, dict]:
        return self._metrics.snapshot()


# -- named adapter entries ----------------------------------------------------


class AdapterEntry:
    """One registered adapter: compiled program(s), identity, version.

    ``kind`` is ``"static"`` (one ``program``) or ``"seeded"`` (the
    extractor / mapping / body triple).  ``version`` bumps on every
    hot-swap, which is what invalidates result-cache rows keyed under
    the old weights.
    """

    __slots__ = (
        "name",
        "kind",
        "digest",
        "version",
        "program",
        "extractor",
        "mapping",
        "body",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        digest: str | None,
        *,
        program: CompiledProgram | None = None,
        extractor: CompiledProgram | None = None,
        mapping: CompiledProgram | None = None,
        body: CompiledProgram | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.digest = digest
        self.version = 1
        self.program = program
        self.extractor = extractor
        self.mapping = mapping
        self.body = body

    def run(self, batch: np.ndarray) -> np.ndarray:
        """This tenant's full pipeline on one batch (no cross-tenant work)."""
        if self.kind == "static":
            assert self.program is not None
            return self.program.run(batch)
        assert self.extractor is not None and self.mapping is not None
        assert self.body is not None
        features = self.extractor.run(batch)
        return self.body.run(batch, self.mapping.run(features))


class AdapterRegistry:
    """Named adapters plus the shared :class:`ProgramCache`.

    ``register`` compiles (or cache-hits) the adapter's programs;
    ``swap`` replaces an existing name's weights hot — queued requests
    resolve their entry at dispatch time, so they serve the new weights;
    ``evict`` removes a name.  All three are safe under concurrent
    serving.
    """

    def __init__(self, *, program_cache_size: int = 64) -> None:
        self._metrics = MetricsRegistry(enabled=True)
        self.programs = ProgramCache(program_cache_size, metrics=self._metrics)
        self._entries: "OrderedDict[str, AdapterEntry]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def names(self) -> list[str]:
        """Registered adapter names, in registration order."""
        with self._lock:
            return list(self._entries)

    def get(self, name: str) -> AdapterEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(sorted(self._entries)) or "(none)"
            raise ServeError(f"unknown adapter {name!r}; registered: {known}")
        return entry

    def register(
        self,
        name: str,
        model_or_result: object,
        *,
        merge: bool = True,
        replace: bool = False,
        precision: str | None = None,
    ) -> AdapterEntry:
        """Compile and install ``name``; ``replace=True`` allows hot-swap.

        Accepts a :class:`~repro.nn.module.Module` or anything exposing
        ``serving_model(merge=...)`` (an ``AttachResult``).  MetaLoRA
        models compile to the extractor/mapping/body split; everything
        else compiles to one ``features()`` program.  ``precision``
        picks the tenant's tier (explicit, else ``REPRO_SERVE_PRECISION``,
        else ``f64``); tenants at different tiers never share a program.
        """
        with self._lock:
            previous = self._entries.get(name)
            if previous is not None and not replace:
                raise ServeError(
                    f"adapter {name!r} is already registered; "
                    f"use swap() (or replace=True) to hot-swap it"
                )
            entry = self._compile_entry(
                name, model_or_result, merge=merge, precision=precision
            )
            if previous is not None:
                entry.version = previous.version + 1
            self._entries[name] = entry
            return entry

    def swap(
        self,
        name: str,
        model_or_result: object,
        *,
        merge: bool = True,
        precision: str | None = None,
    ) -> AdapterEntry:
        """Hot-swap ``name``'s weights; the name must already be registered."""
        with self._lock:
            if name not in self._entries:
                known = ", ".join(sorted(self._entries)) or "(none)"
                raise ServeError(
                    f"cannot swap unknown adapter {name!r} (registered: {known}); "
                    f"use register() to add it"
                )
            self._metrics.inc("serve.registry.swap")
            OBS.enabled and OBS.inc("serve.registry.swap")
            return self.register(
                name, model_or_result, merge=merge, replace=True, precision=precision
            )

    def evict(self, name: str) -> AdapterEntry:
        """Remove ``name``; returns the evicted entry."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            known = ", ".join(sorted(self._entries)) or "(none)"
            raise ServeError(f"cannot evict unknown adapter {name!r}; registered: {known}")
        return entry

    def register_program(
        self, name: str, program: CompiledProgram, *, replace: bool = False
    ) -> AdapterEntry:
        """Install a pre-compiled program under ``name`` (bypasses the cache).

        This is how the single-tenant :class:`~repro.serve.engine.EmbeddingEngine`
        wrapper mounts the program it was handed.
        """
        with self._lock:
            previous = self._entries.get(name)
            if previous is not None and not replace:
                raise ServeError(
                    f"adapter {name!r} is already registered; "
                    f"use swap() (or replace=True) to hot-swap it"
                )
            entry = AdapterEntry(name, "static", None, program=program)
            if previous is not None:
                entry.version = previous.version + 1
            self._entries[name] = entry
            return entry

    def register_checkpoint(
        self,
        name: str,
        model: Module,
        path: object,
        *,
        merge: bool = True,
        replace: bool = False,
        precision: str | None = None,
    ) -> AdapterEntry:
        """Load an adapter checkpoint into ``model`` and register the result.

        The checkpoint (written by :func:`repro.peft.save_adapter`) is
        validated against its manifest and against ``model``, then the
        restored model is compiled under ``name`` — the straight
        checkpoint-file → serving-tenant path.
        """
        from repro.peft.checkpoint import load_adapter

        load_adapter(model, path)
        return self.register(
            name, model, merge=merge, replace=replace, precision=precision
        )

    def stats(self) -> dict[str, dict]:
        """Registry counters (program cache + swaps) as a metrics snapshot."""
        self._metrics.gauge("serve.registry.size", len(self))
        return self._metrics.snapshot()

    def program_counters(self) -> dict[str, object]:
        """Optimizer counters summed over every distinct in-use program.

        Programs are deduplicated by identity (shared programs count
        once); histogram buckets are merged.  Feeds the
        ``serve.fusion.steps_eliminated`` / ``serve.arena.*`` /
        ``serve.parallel.slots`` series the engines fold into
        ``stats()``.
        """
        totals = {
            "fusion_eliminated": 0,
            "quantized": 0,
            "arena_hits": 0,
            "arena_allocs": 0,
            "parallel_skipped": 0,
        }
        buckets: dict[str, int] = {}
        seen: set[int] = set()
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            for program in (entry.program, entry.extractor, entry.mapping, entry.body):
                if program is None or id(program) in seen:
                    continue
                seen.add(id(program))
                counters = program.counters()
                for field in totals:
                    totals[field] += int(counters[field])
                for bucket, count in counters["parallel_slots"].items():
                    buckets[bucket] = buckets.get(bucket, 0) + int(count)
        totals["parallel_slots"] = buckets
        return totals

    # -- compilation ----------------------------------------------------------

    def _compile_entry(
        self,
        name: str,
        model_or_result: object,
        merge: bool,
        precision: str | None = None,
    ) -> AdapterEntry:
        model = model_or_result
        if not isinstance(model, Module):
            serving_model = getattr(model, "serving_model", None)
            if serving_model is None or not callable(serving_model):
                raise ServeError(
                    f"register() expects a Module or AttachResult, "
                    f"got {type(model_or_result).__name__}"
                )
            model = serving_model(merge=merge)
            if not isinstance(model, Module):
                raise ServeError(
                    f"serving_model() on {type(model_or_result).__name__} returned "
                    f"{type(model).__name__}, not a Module"
                )
        precision = resolve_precision(precision)
        if isinstance(model, MetaLoRAModel):
            return self._compile_seeded(name, model, precision)
        key = program_key(model, precision=precision)
        program = self.programs.get(
            key, lambda: compile_features(model, precision=precision)
        )
        return AdapterEntry(name, "static", key.weights, program=program)

    def _compile_seeded(
        self, name: str, model: MetaLoRAModel, precision: str
    ) -> AdapterEntry:
        from repro.peft.checkpoint import model_digest

        extractor_key = program_key(model.extractor, role="extractor", precision=precision)
        body_key = program_key(model.backbone, role="body", precision=precision)
        mapping_key = _mapping_key(model, precision)
        # The extractor feeds the mapping net's f64 trunk: quantizing it
        # would perturb the seeds and break fused==split at int8.
        extractor = self.programs.get(
            extractor_key,
            lambda: compile_forward(model.extractor, precision=precision, quantize=False),
        )
        mapping = self.programs.get(
            mapping_key, lambda: compile_seed_mapping(model, precision=precision)
        )
        body = self.programs.get(
            body_key,
            lambda: compile_features(model, external_seeds=True, precision=precision),
        )
        return AdapterEntry(
            name,
            "seeded",
            model_digest(model),
            extractor=extractor,
            mapping=mapping,
            body=body,
        )


# -- the tenant-aware engine --------------------------------------------------


class MultiTenantEngine:
    """Serve many named adapters behind one typed request/response API.

    The canonical surface is :meth:`serve` (synchronous, single request
    or heterogeneous batch) and :meth:`enqueue` (the micro-batched queue
    path), both speaking :class:`~repro.serve.api.ServeRequest` /
    :class:`~repro.serve.api.ServeResult`.  The pre-redesign call forms
    — ``embed(images, adapter)``, ``submit(sample, adapter)``,
    ``dispatch(pairs)`` — survive as deprecated shims pinned
    bit-identical to the typed path.

    Parameters
    ----------
    registry:
        An :class:`AdapterRegistry` to serve from; omitted, the engine
        owns a fresh one (``program_cache_size`` sizes its LRU).
    max_batch / max_delay / cache_size:
        Micro-batcher and result-cache limits, exactly as on
        :class:`~repro.serve.engine.EmbeddingEngine`.  The result cache
        is keyed by ``(adapter, version, sample digest)``, so hot-swaps
        never serve stale rows.
    tenant_labels:
        When true (default), per-request metrics also record a
        ``{tenant=name}`` labeled series next to the bare aggregate.
    precision:
        Default tier for ``register``/``swap`` calls that don't pick one
        (explicit, else ``REPRO_SERVE_PRECISION``, else ``f64``).
    drain_timeout:
        Seconds :meth:`close` waits for the worker to finish queued work
        before abandoning the drain and failing the remaining requests
        with a typed error (``close(drain_timeout=...)`` overrides per
        call).
    """

    def __init__(
        self,
        registry: AdapterRegistry | None = None,
        *,
        max_batch: int = 32,
        max_delay: float = 0.002,
        cache_size: int = 256,
        tenant_labels: bool = True,
        program_cache_size: int = 64,
        precision: str | None = None,
        drain_timeout: float = 10.0,
    ) -> None:
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ServeError(f"max_delay must be >= 0, got {max_delay}")
        if cache_size < 0:
            raise ServeError(f"cache_size must be >= 0, got {cache_size}")
        if drain_timeout < 0:
            raise ServeError(f"drain_timeout must be >= 0, got {drain_timeout}")
        self.precision = resolve_precision(precision)
        self.registry = (
            registry
            if registry is not None
            else AdapterRegistry(program_cache_size=program_cache_size)
        )
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.cache_size = int(cache_size)
        self.tenant_labels = bool(tenant_labels)
        self.drain_timeout = float(drain_timeout)
        #: Tenant a ``ServeRequest`` with ``adapter=None`` resolves to
        #: (the single-tenant wrapper sets it; bare engines require an
        #: explicit adapter on every request).
        self.default_adapter: str | None = None
        self._cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._metrics = MetricsRegistry(enabled=True)
        self._stats_lock = threading.Lock()
        self._run_lock = threading.Lock()
        self._queue: "queue.Queue[_Request]" = queue.Queue()
        self._worker: threading.Thread | None = None
        self._worker_lock = threading.Lock()
        self._stop = threading.Event()
        self._abort = threading.Event()
        self._closed = False

    # -- registry passthroughs ------------------------------------------------

    def register(self, name: str, model_or_result: object, **kwargs: object) -> AdapterEntry:
        kwargs.setdefault("precision", self.precision)
        return self.registry.register(name, model_or_result, **kwargs)

    def swap(self, name: str, model_or_result: object, **kwargs: object) -> AdapterEntry:
        kwargs.setdefault("precision", self.precision)
        return self.registry.swap(name, model_or_result, **kwargs)

    def evict(self, name: str) -> AdapterEntry:
        return self.registry.evict(name)

    def adapters(self) -> list[str]:
        return self.registry.names()

    # -- metric recording -----------------------------------------------------

    def _inc(
        self, name: str, n: int = 1, *, seconds: float = 0.0, tenant: str | None = None
    ) -> None:
        with self._stats_lock:
            self._metrics.inc(name, n, seconds=seconds)
            if self.tenant_labels and tenant is not None:
                self._metrics.inc(name, n, seconds=seconds, tenant=tenant)
        OBS.enabled and OBS.inc(name, n, seconds=seconds)
        if self.tenant_labels and tenant is not None:
            OBS.enabled and OBS.inc(name, n, seconds=seconds, tenant=tenant)

    def _hist(self, name: str, value: object) -> None:
        with self._stats_lock:
            self._metrics.hist(name, value)
        OBS.enabled and OBS.hist(name, value)

    def _observe(
        self, name: str, seconds: float, nbytes: int = 0, *, tenant: str | None = None
    ) -> None:
        with self._stats_lock:
            self._metrics.observe(name, seconds, bytes=nbytes)
            if self.tenant_labels and tenant is not None:
                self._metrics.observe(name, seconds, bytes=nbytes, tenant=tenant)
        OBS.enabled and OBS.observe(name, seconds, bytes=nbytes)
        if self.tenant_labels and tenant is not None:
            OBS.enabled and OBS.observe(name, seconds, bytes=nbytes, tenant=tenant)

    # -- canonical typed surface ----------------------------------------------

    def _resolve_adapter(self, request: ServeRequest) -> str:
        name = request.adapter if request.adapter is not None else self.default_adapter
        if name is None:
            raise ServeError(
                "ServeRequest.adapter is None and this engine has no "
                "default_adapter; name the tenant on the request"
            )
        return name

    def serve(
        self, requests: "ServeRequest | Sequence[ServeRequest]"
    ) -> "ServeResult | list[ServeResult]":
        """The canonical synchronous path: typed requests in, results out.

        Accepts one :class:`~repro.serve.api.ServeRequest` or a
        heterogeneous sequence of them; returns the matching shape.
        Single-sample requests are grouped across tenants exactly like
        the micro-batcher (stacked static runs, shared seeded bodies);
        batched requests (rank-4 ``sample``) each run standalone, with
        chunking left to the caller.  Unknown adapters raise up front
        (nothing is served); per-request failures — lapsed deadlines,
        kernel errors — come back as non-``ok`` results instead.
        """
        if self._closed:
            raise ServeError("serve() on a closed MultiTenantEngine")
        single = isinstance(requests, ServeRequest)
        batch = [requests] if single else list(requests)
        for request in batch:
            if not isinstance(request, ServeRequest):
                raise ServeError(
                    f"serve() takes ServeRequest objects, got "
                    f"{type(request).__name__} (migrating from embed/dispatch? "
                    f"wrap samples in ServeRequest)"
                )
        results = self._serve_batch(batch)
        return results[0] if single else results

    def _serve_batch(self, requests: list[ServeRequest]) -> list[ServeResult]:
        names = [self._resolve_adapter(request) for request in requests]
        entries = [self.registry.get(name) for name in names]  # fail-fast
        results: list[ServeResult | None] = [None] * len(requests)
        now = time.perf_counter()
        live: list[int] = []
        for i, request in enumerate(requests):
            if request.expired(now):
                self._inc("serve.request.deadline_missed", tenant=names[i])
                elapsed = now - request.created_at
                results[i] = ServeResult.failure(
                    DEADLINE_MISSED,
                    f"SLO budget of {request.deadline}s lapsed before serving",
                    Timings(total_seconds=elapsed),
                )
            else:
                live.append(i)
        singles = [i for i in live if not requests[i].batched]
        if singles:
            started = time.perf_counter()
            sub_entries = [entries[i] for i in singles]
            for indices in self._group_indices(sub_entries):
                group = [singles[j] for j in indices]
                try:
                    rows = self._serve_group(
                        [entries[i] for i in group],
                        [requests[i].sample for i in group],
                    )
                except BaseException as exc:
                    for i in group:
                        results[i] = ServeResult.failure(
                            ERROR, f"serving failed: {exc}"
                        )
                    continue
                done = time.perf_counter()
                for i, row in zip(group, rows):
                    results[i] = ServeResult(
                        embedding=row,
                        timings=Timings(
                            queue_seconds=started - requests[i].created_at,
                            run_seconds=done - started,
                            total_seconds=done - requests[i].created_at,
                        ),
                    )
        for i in live:
            request = requests[i]
            if not request.batched:
                continue
            started = time.perf_counter()
            try:
                with TRACER.span(
                    "serve.request",
                    kind="bulk",
                    tenant=names[i],
                    samples=int(request.sample.shape[0]),
                ):
                    out = self._run_entry(entries[i], request.sample)
            except BaseException as exc:
                results[i] = ServeResult.failure(ERROR, f"serving failed: {exc}")
                continue
            done = time.perf_counter()
            results[i] = ServeResult(
                embedding=out,
                timings=Timings(
                    queue_seconds=started - request.created_at,
                    run_seconds=done - started,
                    total_seconds=done - request.created_at,
                ),
            )
        return results  # type: ignore[return-value]

    # -- deprecated pre-redesign call forms -----------------------------------

    def embed(self, images: np.ndarray, adapter: str, batch_size: int = 64) -> np.ndarray:
        """Deprecated: wrap chunks in :class:`ServeRequest` and ``serve()``.

        Chunk boundaries match ``extract_embeddings``, so rows stay
        bit-identical to the reference path under that adapter's model.
        """
        warnings.warn(
            "MultiTenantEngine.embed() is deprecated; build batched "
            "ServeRequest objects and call serve()",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._closed:
            raise ServeError("embed() on a closed MultiTenantEngine")
        self.registry.get(adapter)  # fail unknown names before ingesting
        images = _ingest(images)
        requests = [
            ServeRequest(sample=images[start : start + batch_size], adapter=adapter)
            for start in range(0, images.shape[0], batch_size)
        ]
        results = self.serve(requests)
        return np.concatenate([result.require() for result in results], axis=0)

    def _run_program(
        self,
        program: CompiledProgram,
        inputs: tuple[np.ndarray, ...],
        tenant: str,
    ) -> np.ndarray:
        with self._run_lock:
            start = time.perf_counter()
            out = program.run(*inputs)
            elapsed = time.perf_counter() - start
        self._observe("serve.run", elapsed, out.nbytes, tenant=tenant)
        return out

    def _run_entry(self, entry: AdapterEntry, batch: np.ndarray) -> np.ndarray:
        """One tenant's pipeline on one batch, with per-program metrics."""
        if entry.kind == "static":
            return self._run_program(entry.program, (batch,), entry.name)
        features = self._run_program(entry.extractor, (batch,), entry.name)
        seeds = self._run_program(entry.mapping, (features,), entry.name)
        return self._run_program(entry.body, (batch, seeds), entry.name)

    # -- request path: heterogeneous micro-batching ---------------------------

    def enqueue(self, request: ServeRequest) -> "Future[ServeResult]":
        """Queue one single-sample request; resolves to a :class:`ServeResult`.

        The future never carries serving failures as exceptions — lapsed
        deadlines, evicted tenants and kernel errors resolve to results
        whose ``status`` says what happened (``require()`` re-raises).
        """
        if self._closed:
            raise ServeError("enqueue() on a closed MultiTenantEngine")
        if not isinstance(request, ServeRequest):
            raise ServeError(
                f"enqueue() takes a ServeRequest, got {type(request).__name__}"
            )
        if request.batched:
            raise ServeError(
                "enqueue() takes single-sample requests (batching is the "
                "queue's job); use serve() for pre-batched samples"
            )
        name = self._resolve_adapter(request)
        entry = self.registry.get(name)  # fail unknown names fast
        key = (name, entry.version, _digest(request.sample)) if self.cache_size else None
        future: "Future[ServeResult]" = Future()
        if key is not None:
            cached = self._cache_get(key)
            if cached is not None:
                self._inc("serve.requests", tenant=name)
                self._inc("serve.cache.hit", tenant=name)
                future.set_result(ServeResult(embedding=cached))
                return future
            self._inc("serve.cache.miss", tenant=name)
        self._ensure_worker()
        self._queue.put(_Request(request, name, key, future))
        return future

    def submit(self, sample: np.ndarray, adapter: str) -> "Future[np.ndarray]":
        """Deprecated: ``enqueue(ServeRequest(...))`` is the queue path now.

        The returned future keeps the old contract — it resolves to the
        raw embedding row and carries serving failures as exceptions.
        """
        warnings.warn(
            "MultiTenantEngine.submit() is deprecated; use "
            "enqueue(ServeRequest(sample, adapter=...)) and read the "
            "ServeResult",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._closed:
            raise ServeError("submit() on a closed MultiTenantEngine")
        return _legacy_future(self.enqueue(ServeRequest(sample=sample, adapter=adapter)))

    def dispatch(self, batch: Sequence[tuple[str, np.ndarray]]) -> list[np.ndarray]:
        """Deprecated: build :class:`ServeRequest` lists and ``serve()``.

        ``batch`` is ``(adapter_name, sample)`` pairs; the result is one
        embedding row per pair, in request order, with the same
        cross-tenant grouping the micro-batcher applies.
        """
        warnings.warn(
            "MultiTenantEngine.dispatch() is deprecated; build a list of "
            "ServeRequest objects and call serve()",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._closed:
            raise ServeError("dispatch() on a closed MultiTenantEngine")
        requests = [ServeRequest(sample=sample, adapter=name) for name, sample in batch]
        return [result.require() for result in self.serve(requests)]

    @staticmethod
    def _group_indices(entries: Sequence[AdapterEntry]) -> list[list[int]]:
        """Group request indices by runnable unit: static tenants by
        program identity, seeded tenants by body-program identity."""
        groups: "OrderedDict[tuple, list[int]]" = OrderedDict()
        for index, entry in enumerate(entries):
            if entry.kind == "static":
                key = ("static", id(entry.program))
            else:
                key = ("seeded", id(entry.body))
            groups.setdefault(key, []).append(index)
        return list(groups.values())

    def _serve_group(
        self, entries: list[AdapterEntry], samples: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Run one homogeneous group; returns fresh per-request rows.

        Static group: one stacked run.  Seeded group: extractor once per
        distinct extractor program over the stacked union, mapping per
        tenant on its own rows (keeping mapping batch shapes identical
        to single-tenant serving), then one body run over the union with
        every tenant's seeds stacked in request order.
        """
        count = len(entries)
        tenants = {entry.name for entry in entries}
        label = next(iter(tenants)) if len(tenants) == 1 else SHARED_TENANT
        if entries[0].kind == "static":
            out = self._run_program(entries[0].program, (np.stack(samples),), label)
            return [np.ascontiguousarray(out[i]) for i in range(count)]
        x = np.stack(samples)
        feature_rows: list[np.ndarray | None] = [None] * count
        by_extractor: "OrderedDict[int, list[int]]" = OrderedDict()
        for index, entry in enumerate(entries):
            by_extractor.setdefault(id(entry.extractor), []).append(index)
        for indices in by_extractor.values():
            sub = {entries[i].name for i in indices}
            sub_label = next(iter(sub)) if len(sub) == 1 else SHARED_TENANT
            features = self._run_program(
                entries[indices[0]].extractor,
                (x[np.asarray(indices)] if len(indices) < count else x,),
                sub_label,
            )
            for j, i in enumerate(indices):
                feature_rows[i] = features[j]
        seed_rows: list[np.ndarray | None] = [None] * count
        by_mapping: "OrderedDict[int, list[int]]" = OrderedDict()
        for index, entry in enumerate(entries):
            by_mapping.setdefault(id(entry.mapping), []).append(index)
        for indices in by_mapping.values():
            entry = entries[indices[0]]
            features = np.stack([feature_rows[i] for i in indices])
            seeds = self._run_program(entry.mapping, (features,), entry.name)
            for j, i in enumerate(indices):
                seed_rows[i] = seeds[j]
        out = self._run_program(
            entries[0].body, (x, np.stack(seed_rows)), label
        )
        return [np.ascontiguousarray(out[i]) for i in range(count)]

    # -- worker ---------------------------------------------------------------

    def _ensure_worker(self) -> None:
        with self._worker_lock:
            if self._worker is not None and self._worker.is_alive():
                return
            self._stop.clear()
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-serve-batcher", daemon=True
            )
            self._worker.start()

    def _worker_loop(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            self._process(self._gather(first))

    def _gather(self, first: _Request) -> list[_Request]:
        """Coalesce queued requests after ``first``, bounded by
        ``max_batch`` and by ``max_delay`` seconds since the first."""
        batch = [first]
        deadline = time.perf_counter() + self.max_delay
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _process(self, requests: list[_Request]) -> None:
        queued = time.perf_counter()
        if self._abort.is_set():
            # close() gave up on the drain: answer, never hang a caller.
            for item in requests:
                item.future.set_result(
                    ServeResult.failure(
                        ERROR, "MultiTenantEngine closed before serving this request"
                    )
                )
            return
        self._hist("serve.queue.depth", self._queue.qsize())
        live: list[_Request] = []
        for item in requests:
            if item.request.expired(queued):
                self._inc("serve.request.deadline_missed", tenant=item.adapter)
                elapsed = queued - item.request.created_at
                item.future.set_result(
                    ServeResult.failure(
                        DEADLINE_MISSED,
                        f"SLO budget of {item.request.deadline}s lapsed in queue",
                        Timings(queue_seconds=elapsed, total_seconds=elapsed),
                    )
                )
            else:
                live.append(item)
        # Resolve entries at dispatch time: a swap() between enqueue and
        # dispatch serves the *new* weights; an evict fails the request.
        resolved: list[tuple[_Request, AdapterEntry]] = []
        for item in live:
            try:
                resolved.append((item, self.registry.get(item.adapter)))
            except ServeError as exc:
                item.future.set_result(ServeResult.failure(ERROR, str(exc)))
        if not resolved:
            return
        entries = [entry for __, entry in resolved]
        with TRACER.span("serve.batch", size=len(resolved)):
            for indices in self._group_indices(entries):
                group = [resolved[i] for i in indices]
                group_entries = [entry for __, entry in group]
                run_started = time.perf_counter()
                try:
                    rows = self._serve_group(
                        group_entries, [item.request.sample for item, __ in group]
                    )
                except BaseException as exc:  # surface kernel errors to callers
                    for item, __ in group:
                        item.future.set_result(
                            ServeResult.failure(ERROR, f"serving failed: {exc}")
                        )
                    continue
                run_done = time.perf_counter()
                for item, __ in group:
                    self._inc("serve.requests", tenant=item.adapter)
                self._inc("serve.batches")
                self._hist("serve.batch.size", len(group))
                self._hist(
                    "serve.batch.tenants", len({entry.name for entry in group_entries})
                )
                waited = sum(queued - item.enqueued_at for item, __ in group)
                self._inc("serve.queue_wait", len(group), seconds=waited)
                for (item, __), row in zip(group, rows):
                    if item.key is not None:
                        self._cache_put(item.key, row)
                        row = row.copy()
                    item.future.set_result(
                        ServeResult(
                            embedding=row,
                            timings=Timings(
                                queue_seconds=run_started - item.request.created_at,
                                run_seconds=run_done - run_started,
                                total_seconds=run_done - item.request.created_at,
                            ),
                        )
                    )

    # -- LRU result cache -----------------------------------------------------

    def _cache_get(self, key: tuple) -> np.ndarray | None:
        with self._stats_lock:
            row = self._cache.get(key)
            if row is None:
                return None
            self._cache.move_to_end(key)
            return row.copy()

    def _cache_put(self, key: tuple, row: np.ndarray) -> None:
        with self._stats_lock:
            self._cache[key] = row
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                self._metrics.inc("serve.cache.evict")
                OBS.enabled and OBS.inc("serve.cache.evict")

    # -- lifecycle ------------------------------------------------------------

    def stats(self) -> dict[str, dict]:
        """Engine + registry counters in the unified snapshot schema.

        The engine's own series (bare names, plus ``{tenant=...}``
        labeled twins when ``tenant_labels`` is on) are merged with its
        registry's (``serve.program_cache.*``, ``serve.registry.*``) and
        with the optimizer counters summed over every in-use compiled
        program (``serve.fusion.steps_eliminated``, ``serve.arena.*``,
        ``serve.parallel.slots``) — merged, not inc'd, so the series
        appear even at zero.
        """
        with self._stats_lock:
            self._metrics.gauge("serve.cache.size", len(self._cache))
            snapshot = self._metrics.snapshot()
        merged = MetricsRegistry(enabled=True)
        merged.merge(ZERO_SERIES)
        merged.merge(snapshot)
        merged.merge(self.registry.stats())
        programs = self.registry.program_counters()
        merged.merge(
            {
                "serve.fusion.steps_eliminated": {
                    "kind": "counter",
                    "calls": int(programs["fusion_eliminated"]),
                },
                "serve.quantized.weights": {
                    "kind": "counter",
                    "calls": int(programs["quantized"]),
                },
                "serve.arena.hit": {
                    "kind": "counter",
                    "calls": int(programs["arena_hits"]),
                },
                "serve.arena.alloc": {
                    "kind": "counter",
                    "calls": int(programs["arena_allocs"]),
                },
                "serve.parallel.slots": {
                    "kind": "histogram",
                    "calls": sum(programs["parallel_slots"].values()),
                    "buckets": dict(programs["parallel_slots"]),
                },
                "serve.parallel.skipped": {
                    "kind": "counter",
                    "calls": int(programs["parallel_skipped"]),
                },
            }
        )
        return merged.snapshot()

    def close(self, drain_timeout: float | None = None) -> None:
        """Stop the worker and answer every pending request — never hang.

        Waits up to ``drain_timeout`` seconds (default: the constructor
        knob) for the worker to finish queued work.  If the drain times
        out — a stalled program, a flooded queue — the engine aborts:
        every request still queued (or picked up after the abort)
        resolves to an ``error`` :class:`ServeResult`, so callers
        blocked on futures get a typed failure instead of a hang.
        """
        if self._closed:
            return
        self._closed = True
        timeout = self.drain_timeout if drain_timeout is None else float(drain_timeout)
        self._stop.set()
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=timeout)
            if worker.is_alive():
                self._abort.set()
        while True:  # belt and braces: fail anything the worker left behind
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            item.future.set_result(
                ServeResult.failure(
                    ERROR, "MultiTenantEngine closed before serving this request"
                )
            )

    def __enter__(self) -> "MultiTenantEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
