"""Bench: **Figure 1** — tensor diagrams and tensor contraction.

Figure 1 introduces the diagrammatic language: vectors, matrices,
3rd-order tensors, the convolution (dummy) node, and contraction.  The
bench (a) renders the diagrams for each object the figure shows, (b)
verifies that graph contraction equals a reference einsum, and (c) times
one-shot einsum against the greedy pairwise schedule on a chain where
contraction order matters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensornet import TensorNetwork, render_diagram
from repro.tensornet.diagrams import describe_order


def _figure1_objects(rng) -> TensorNetwork:
    net = TensorNetwork()
    net.add("v", rng.normal(size=5), ("a",))                 # 1st-order
    net.add("M", rng.normal(size=(5, 6)), ("a", "b"))        # 2nd-order
    net.add("T", rng.normal(size=(6, 3, 4)), ("b", "c", "d"))  # 3rd-order
    return net


def _chain_network(rng, length: int = 6, bond: int = 8, free: int = 40) -> TensorNetwork:
    net = TensorNetwork()
    net.add("t0", rng.normal(size=(free, bond)), ("f0", "b0"))
    for i in range(1, length - 1):
        net.add(
            f"t{i}",
            rng.normal(size=(bond, bond)),
            (f"b{i - 1}", f"b{i}"),
        )
    net.add(
        f"t{length - 1}",
        rng.normal(size=(bond, free)),
        (f"b{length - 2}", f"f{length - 1}"),
    )
    return net


@pytest.mark.benchmark(group="figure1")
def test_figure1_diagram_rendering(benchmark):
    """Render the Fig. 1 objects and check their diagram roles."""
    rng = np.random.default_rng(0)
    net = _figure1_objects(rng)
    text = benchmark(lambda: render_diagram(net))
    print("\n" + text)
    roles = describe_order(net)
    assert roles["v"].startswith("vector")
    assert roles["M"].startswith("matrix")
    assert "3th-order" in roles["T"]


@pytest.mark.benchmark(group="figure1")
def test_figure1_contraction_equivalence(benchmark):
    """Graph contraction (Eq. 1, applied along the diagram) ≡ einsum."""
    rng = np.random.default_rng(1)
    net = _figure1_objects(rng)
    v = net._tensors["v"]
    m = net._tensors["M"]
    t = net._tensors["T"]
    reference = np.einsum("a,ab,bcd->cd", v, m, t)
    result = benchmark(net.contract)
    assert np.allclose(result, reference, atol=1e-10)
    stepwise, schedule = net.contract_with_schedule()
    assert np.allclose(stepwise, reference, atol=1e-10)
    print(f"\nschedule: {[(s.left, s.right, s.result_size) for s in schedule]}")


@pytest.mark.benchmark(group="figure1")
def test_figure1_greedy_schedule_cost(benchmark):
    """Greedy planning keeps intermediates small on a matrix chain."""
    rng = np.random.default_rng(2)
    net = _chain_network(rng)
    result, schedule = benchmark(net.contract_with_schedule)
    assert np.allclose(result, net.contract(), atol=1e-6)
    peak = max(step.result_size for step in schedule)
    # Naive left-to-right would first form a (free x bond) block and keep a
    # free-sized intermediate the whole way; greedy must not exceed that.
    print(f"\npeak greedy intermediate: {peak} elements")
    assert peak <= 40 * 40
