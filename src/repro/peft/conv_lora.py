"""Conv-LoRA (Sec. III-A, Eq. 5, Fig. 3).

For a convolutional tensor ``W ∈ R^{K×K×I×O}`` the update is

    ΔW = A ×₄ B = Σ_r A[..., r] ⊗ B[r, :]

with ``A ∈ R^{K×K×I×R}`` (a *small* convolution producing R channels) and
``B ∈ R^{R×O}`` (a 1×1 channel-recovery convolution).  Figure 3's key
observation — that this factorization *is* a small conv followed by a 1×1
conv — is exactly how the forward pass is computed, so the bench can
verify the algebraic identity ΔW-materialized ≡ two-stage convolution.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.conv_ops import conv2d
from repro.autograd.ops import einsum
from repro.autograd.tensor import Tensor
from repro.errors import AdapterError
from repro.nn import init
from repro.nn.conv import Conv2d
from repro.nn.module import Parameter
from repro.peft.base import Adapter


class ConvLoRA(Adapter):
    """Conv-LoRA adapter around a frozen :class:`~repro.nn.conv.Conv2d`."""

    def __init__(
        self,
        base: Conv2d,
        rank: int,
        alpha: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, Conv2d):
            raise AdapterError(f"ConvLoRA wraps Conv2d, got {type(base).__name__}")
        if rank <= 0:
            raise AdapterError(f"Conv-LoRA rank must be positive, got {rank}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.rank = rank
        self.alpha = float(alpha if alpha is not None else rank)
        self.scaling = self.alpha / rank
        k = base.kernel_size
        fan_in = base.in_channels * k * k
        self.lora_a = Parameter(
            init.normal(rng, (k, k, base.in_channels, rank), std=1.0 / np.sqrt(fan_in))
        )
        self.lora_b = Parameter(init.zeros((rank, base.out_channels)))

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        # Fig. 3: small conv to R channels, then a 1x1 conv recovers O channels.
        mid = conv2d(x, self.lora_a, stride=self.base.stride, padding=self.base.padding)
        delta = einsum("nrhw,ro->nohw", mid, self.lora_b)
        return out + delta * self.scaling

    def delta_weight(self) -> np.ndarray:
        """Materialized ΔW = A ×₄ B (Eq. 5), shape ``(K, K, I, O)``."""
        return (
            np.einsum("abir,ro->abio", self.lora_a.data, self.lora_b.data) * self.scaling
        )

    def extra_parameter_count(self) -> int:
        return self.lora_a.size + self.lora_b.size
