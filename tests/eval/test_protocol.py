"""Tests for the Table I protocol plumbing (fast pieces only)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.eval.protocol import (
    METHOD_LABELS,
    METHODS,
    Table1Config,
    Table1Row,
    build_adapted_model,
    build_backbone,
    format_table1,
)
from repro.peft import MetaLoRAModel, iter_adapters


class TestConfig:
    def test_defaults_valid(self):
        config = Table1Config()
        assert config.backbone == "resnet"
        assert set(config.methods) == set(METHODS)

    def test_quick_is_smaller(self):
        config = Table1Config()
        quick = config.quick()
        assert quick.num_tasks < config.num_tasks
        assert quick.pretrain_samples < config.pretrain_samples

    def test_invalid_backbone(self):
        with pytest.raises(ConfigError):
            Table1Config(backbone="vit")

    def test_invalid_method(self):
        with pytest.raises(ConfigError):
            Table1Config(methods=("lora", "dora"))

    def test_needs_shifted_tasks(self):
        with pytest.raises(ConfigError):
            Table1Config(num_tasks=1)


class TestBuilders:
    def test_build_backbone_resnet(self, rng):
        model = build_backbone(Table1Config(), rng)
        assert type(model).__name__ == "ResNet"

    def test_build_backbone_mixer(self, rng):
        model = build_backbone(Table1Config(backbone="mixer"), rng)
        assert type(model).__name__ == "MLPMixer"

    def _pretrained_state(self, config, rng):
        model = build_backbone(config, rng)
        return model.state_dict()

    def test_original_is_frozen_copy(self, rng):
        config = Table1Config()
        state = self._pretrained_state(config, rng)
        model = build_adapted_model("original", config, state, rng)
        assert model.parameter_count(trainable_only=True) == 0

    @pytest.mark.parametrize("method", ["lora", "multi_lora"])
    def test_static_methods_have_trainable_adapters(self, rng, method):
        config = Table1Config()
        state = self._pretrained_state(config, rng)
        model = build_adapted_model(method, config, state, rng)
        assert model.parameter_count(trainable_only=True) > 0
        assert list(iter_adapters(model))

    @pytest.mark.parametrize("method", ["meta_lora_cp", "meta_lora_tr"])
    def test_meta_methods_return_meta_model(self, rng, method):
        config = Table1Config()
        state = self._pretrained_state(config, rng)
        model = build_adapted_model(method, config, state, rng)
        assert isinstance(model, MetaLoRAModel)

    def test_meta_on_mixer_requires_extractor_state(self, rng):
        """Sec. III-B.1: the feature extractor is a pretrained ResNet, so
        non-ResNet backbones must supply its weights explicitly."""
        from repro.eval.protocol import Table1Config

        config = Table1Config(backbone="mixer")
        state = build_backbone(config, rng).state_dict()
        with pytest.raises(ConfigError, match="extractor_state"):
            build_adapted_model("meta_lora_tr", config, state, rng)

    def test_meta_on_mixer_with_resnet_extractor(self, rng):
        from dataclasses import replace

        from repro.eval.protocol import Table1Config

        config = Table1Config(backbone="mixer")
        state = build_backbone(config, rng).state_dict()
        resnet_state = build_backbone(
            replace(config, backbone="resnet"), rng
        ).state_dict()
        model = build_adapted_model(
            "meta_lora_tr", config, state, rng, extractor_state=resnet_state
        )
        assert isinstance(model, MetaLoRAModel)
        assert type(model.extractor.backbone).__name__ == "ResNet"

    def test_unknown_method_raises(self, rng):
        config = Table1Config()
        state = self._pretrained_state(config, rng)
        with pytest.raises(ConfigError):
            build_adapted_model("adapter_fusion", config, state, rng)

    def test_adapted_copies_share_pretrained_weights(self, rng):
        config = Table1Config()
        state = self._pretrained_state(config, rng)
        a = build_adapted_model("lora", config, state, rng)
        b = build_adapted_model("multi_lora", config, state, rng)
        wa = dict(a.named_parameters())
        wb = dict(b.named_parameters())
        key = next(k for k in wa if k.endswith("base.weight"))
        assert np.allclose(wa[key].data, wb[key].data)


class TestFormatting:
    def test_format_table_contains_all_rows(self):
        config = Table1Config(ks=(5, 10))
        rows = {
            m: Table1Row(method=m, accuracy_by_k={5: 0.5, 10: 0.6})
            for m in config.methods
        }
        text = format_table1([rows], config)
        for label in METHOD_LABELS.values():
            assert label in text
        assert "50.00%" in text and "60.00%" in text
