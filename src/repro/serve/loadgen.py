"""Open-loop Poisson-arrival load generator for the serving frontend.

Drives a :class:`~repro.serve.frontend.ServingFrontend` over real
sockets with an *open-loop* arrival process: request send times are
drawn up front from a Poisson process at the offered rate and each
request is sent at its scheduled instant whether or not earlier ones
have completed — the load does not back off when the server slows down,
which is what makes offered-vs-achieved throughput and tail latency
meaningful (a closed loop would coordinate-omit the queueing delay).

Mechanics:

- arrivals are pre-drawn (``rng.exponential(1/rate)`` gaps, seeded, so a
  run is reproducible), each tagged with a tenant drawn from the mix
  and a sample drawn from that tenant's pool;
- arrivals are distributed round-robin over ``workers`` blocking
  :class:`~repro.serve.frontend.ServeClient` connections, each on its
  own thread; a worker sleeps until an arrival's scheduled time, sends,
  and records the outcome;
- per-request latency is measured from the *scheduled* arrival to
  completion (not from the actual send), so generator lateness cannot
  hide server queueing; ``max_lateness_seconds`` reports how far the
  generator itself fell behind (large values mean: add workers).

:func:`run_load` returns a plain dict — counts by status, latencies in
milliseconds, offered vs achieved rate — which ``repro bench --suite
load`` aggregates into ``BENCH_load.json``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.errors import ServeError
from repro.serve.frontend import ServeClient

__all__ = ["run_load"]


def _plan_arrivals(
    rate: float,
    duration: float,
    adapters: list[str | None],
    pools: dict[str | None, np.ndarray],
    rng: np.random.Generator,
) -> list[tuple[float, str | None, int]]:
    """Pre-draw the whole arrival schedule: (offset, tenant, sample index)."""
    arrivals: list[tuple[float, str | None, int]] = []
    clock = float(rng.exponential(1.0 / rate))
    while clock < duration:
        adapter = adapters[int(rng.integers(len(adapters)))]
        index = int(rng.integers(pools[adapter].shape[0]))
        arrivals.append((clock, adapter, index))
        clock += float(rng.exponential(1.0 / rate))
    return arrivals


def run_load(
    host: str,
    port: int,
    samples: "np.ndarray | dict[str, np.ndarray]",
    *,
    rate: float,
    duration: float,
    adapters: "list[str] | None" = None,
    deadline: float | None = None,
    priority: int = 0,
    seed: int = 0,
    workers: int | None = None,
    timeout: float = 30.0,
) -> dict:
    """Offer ``rate`` requests/second for ``duration`` seconds; report back.

    ``samples`` is one shared pool of rank-4 samples, or a per-tenant
    ``{adapter: pool}`` dict; ``adapters`` names the tenant mix (uniform
    draw per request; ``None`` sends requests without an adapter, for
    single-tenant servers).  The returned dict carries ``sent`` /
    ``statuses`` / ``latencies_ms`` (scheduled-arrival → completion) /
    ``achieved_rate`` (``ok`` completions per second of wall time) and
    ``max_lateness_seconds``.
    """
    if rate <= 0:
        raise ServeError(f"offered rate must be > 0, got {rate}")
    if duration <= 0:
        raise ServeError(f"duration must be > 0, got {duration}")
    if isinstance(samples, dict):
        if adapters is None:
            adapters = list(samples)
        pools: dict[str | None, np.ndarray] = {
            name: np.asarray(pool) for name, pool in samples.items()
        }
    else:
        pool = np.asarray(samples)
        names: list[str | None] = list(adapters) if adapters else [None]
        pools = {name: pool for name in names}
        adapters = names
    if not adapters:
        raise ServeError("load generator needs at least one adapter (or [None])")
    for name, pool in pools.items():
        if pool.ndim != 4 or pool.shape[0] == 0:
            raise ServeError(
                f"sample pool for adapter {name!r} must be non-empty rank-4, "
                f"got shape {pool.shape}"
            )

    rng = np.random.default_rng(seed)
    arrivals = _plan_arrivals(rate, duration, list(adapters), pools, rng)
    worker_count = (
        int(workers)
        if workers is not None
        else int(min(32, max(4, round(rate * 0.25))))
    )
    lanes: list[list[tuple[float, str | None, int]]] = [
        arrivals[lane::worker_count] for lane in range(worker_count)
    ]

    lock = threading.Lock()
    outcomes: list[tuple[str, float]] = []  # (status, latency seconds)
    lateness: list[float] = [0.0]
    errors: list[str] = []
    barrier = threading.Barrier(worker_count + 1)

    def lane_worker(schedule: list[tuple[float, str | None, int]]) -> None:
        client = ServeClient(host, port, timeout=timeout)
        try:
            barrier.wait(timeout=timeout)
            start = time.perf_counter()
            for offset, adapter, index in schedule:
                scheduled = start + offset
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                late = time.perf_counter() - scheduled
                result = client.serve(
                    pools[adapter][index],
                    adapter=adapter,
                    deadline=deadline,
                    priority=priority,
                )
                finished = time.perf_counter()
                with lock:
                    outcomes.append((result.status, finished - scheduled))
                    if late > lateness[0]:
                        lateness[0] = late
        except BaseException as exc:
            with lock:
                errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=lane_worker, args=(lane,), daemon=True)
        for lane in lanes
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=timeout)
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=duration + timeout)
    wall = time.perf_counter() - wall_start
    if errors:
        raise ServeError(f"load generator worker failed: {errors[0]}")

    statuses: dict[str, int] = {}
    for status, __ in outcomes:
        statuses[status] = statuses.get(status, 0) + 1
    ok_latencies = sorted(
        latency * 1000.0 for status, latency in outcomes if status == "ok"
    )
    return {
        "offered_rate": float(rate),
        "duration_seconds": float(duration),
        "workers": worker_count,
        "sent": len(arrivals),
        "completed": len(outcomes),
        "statuses": statuses,
        "latencies_ms": [float(value) for value in ok_latencies],
        "achieved_rate": float(statuses.get("ok", 0) / max(wall, 1e-9)),
        "max_lateness_seconds": float(lateness[0]),
    }
