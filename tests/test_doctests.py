"""Run the doctest examples embedded in library docstrings."""

import doctest

import pytest

import repro.train.early_stopping
import repro.utils.registry
import repro.utils.timing

MODULES = [
    repro.train.early_stopping,
    repro.utils.registry,
    repro.utils.timing,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
    assert result.attempted > 0, f"no doctests found in {module.__name__}"
