"""MetaLoRA (TR) adapters (Sec. III-C Eq. 7 and Sec. III-D).

The weight update is a Tensor-Ring contraction whose closure matrix ``C``
is meta-generated:

    linear:  ΔW(C) = Σ_{r₀,r₁,r₂} A[r₀, :, r₁] B[r₁, :, r₂] C[r₂, r₀]
    conv:    ΔW(C) = Σ_{r₀,r₁,r₂} A[r₀, :, :, :, r₁] B[r₁, :, r₂] C[r₂, r₀]

Compared to CP's diagonal seed, the TR closure mixes rank channels through
a full ``R×R`` matrix — strictly more expressive per seed scalar, which is
the paper's explanation for TR edging out CP in Table I.  The uniform
ring rank ``R`` is used throughout (``R₀ = R₁ = R₂ = R``).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.conv_ops import conv2d
from repro.autograd.ops import einsum
from repro.autograd.tensor import Tensor
from repro.errors import AdapterError, ShapeError
from repro.nn import init
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Parameter
from repro.peft.base import Adapter


class MetaLoRATRLinear(Adapter):
    """MetaLoRA (TR) around a frozen linear layer; seed shape ``(R, R)``."""

    is_meta = True

    def __init__(
        self,
        base: Linear,
        rank: int,
        alpha: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, Linear):
            raise AdapterError(f"MetaLoRATRLinear wraps Linear, got {type(base).__name__}")
        if rank <= 0:
            raise AdapterError(f"rank must be positive, got {rank}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.rank = rank
        self.scaling = float(alpha if alpha is not None else rank) / rank
        self.core_a = Parameter(
            init.normal(rng, (rank, base.in_features, rank), std=0.02)
        )
        self.core_b = Parameter(init.zeros((rank, base.out_features, rank)))
        self.static_seed = Parameter(np.eye(rank, dtype=np.float32))
        self._seed: Tensor | None = None

    @property
    def seed_shape(self) -> tuple[int, ...]:
        return (self.rank, self.rank)

    def set_seed(self, seed: Tensor | None) -> None:
        if seed is not None and seed.shape[1:] != self.seed_shape:
            raise ShapeError(
                f"seed must be (N, {self.rank}, {self.rank}), got {seed.shape}"
            )
        self._seed = seed

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        squeeze = x.ndim == 2
        x3 = x.reshape(x.shape[0], 1, x.shape[1]) if squeeze else x
        # t1[n,t,p,r] = Σ_i x[n,t,i] A[p,i,r]
        t1 = einsum("nti,pir->ntpr", x3, self.core_a)
        if self._seed is None:
            # delta[n,t,o] = Σ t1[n,t,p,r] B[r,o,q] C[q,p]
            delta = einsum("ntpr,roq,qp->nto", t1, self.core_b, self.static_seed)
        else:
            if self._seed.shape[0] != x.shape[0]:
                raise ShapeError(
                    f"seed batch {self._seed.shape[0]} != input batch {x.shape[0]}"
                )
            delta = einsum("ntpr,roq,nqp->nto", t1, self.core_b, self._seed)
        delta = delta * self.scaling
        if squeeze:
            delta = delta.reshape(x.shape[0], self.base.out_features)
        return out + delta

    def delta_weight(self) -> np.ndarray:
        """Static-seed ΔW (Eq. 7 with the learned closure matrix)."""
        return (
            np.einsum(
                "pir,roq,qp->io",
                self.core_a.data,
                self.core_b.data,
                self.static_seed.data,
            )
            * self.scaling
        )

    def extra_parameter_count(self) -> int:
        return self.core_a.size + self.core_b.size + self.static_seed.size


class MetaLoRATRConv(Adapter):
    """MetaLoRA (TR) around a frozen conv layer; seed shape ``(R, R)``.

    The spatial core ``A ∈ R^{R×K×K×I×R}`` acts as a convolution with
    ``R·R`` output channels (one per (ring-left, ring-right) pair); the
    closure matrix then mixes the ring indices per sample before ``B``
    recovers the output channels.
    """

    is_meta = True

    def __init__(
        self,
        base: Conv2d,
        rank: int,
        alpha: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not isinstance(base, Conv2d):
            raise AdapterError(f"MetaLoRATRConv wraps Conv2d, got {type(base).__name__}")
        if rank <= 0:
            raise AdapterError(f"rank must be positive, got {rank}")
        super().__init__(base)
        rng = rng or np.random.default_rng()
        self.rank = rank
        self.scaling = float(alpha if alpha is not None else rank) / rank
        k = base.kernel_size
        fan_in = base.in_channels * k * k
        self.core_a = Parameter(
            init.normal(
                rng, (rank, k, k, base.in_channels, rank), std=1.0 / np.sqrt(fan_in)
            )
        )
        self.core_b = Parameter(init.zeros((rank, base.out_channels, rank)))
        self.static_seed = Parameter(np.eye(rank, dtype=np.float32))
        self._seed: Tensor | None = None

    @property
    def seed_shape(self) -> tuple[int, ...]:
        return (self.rank, self.rank)

    def set_seed(self, seed: Tensor | None) -> None:
        if seed is not None and seed.shape[1:] != self.seed_shape:
            raise ShapeError(
                f"seed must be (N, {self.rank}, {self.rank}), got {seed.shape}"
            )
        self._seed = seed

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        r = self.rank
        k = self.base.kernel_size
        # A as one convolution with R·R output channels, index = p·R + r1.
        a_conv = self.core_a.transpose(1, 2, 3, 0, 4).reshape(
            k, k, self.base.in_channels, r * r
        )
        mid = conv2d(x, a_conv, stride=self.base.stride, padding=self.base.padding)
        n, __, h, w = mid.shape
        mid = mid.reshape(n, r, r, h, w)  # (N, p, r1, H, W)
        if self._seed is None:
            delta = einsum("nprhw,roq,qp->nohw", mid, self.core_b, self.static_seed)
        else:
            if self._seed.shape[0] != x.shape[0]:
                raise ShapeError(
                    f"seed batch {self._seed.shape[0]} != input batch {x.shape[0]}"
                )
            delta = einsum("nprhw,roq,nqp->nohw", mid, self.core_b, self._seed)
        return out + delta * self.scaling

    def delta_weight(self) -> np.ndarray:
        """Static-seed ΔW of shape ``(K, K, I, O)``."""
        return (
            np.einsum(
                "pabir,roq,qp->abio",
                self.core_a.data,
                self.core_b.data,
                self.static_seed.data,
            )
            * self.scaling
        )

    def extra_parameter_count(self) -> int:
        return self.core_a.size + self.core_b.size + self.static_seed.size
