"""Typed metrics registry: the counter half of ``repro.obs``.

Every instrumented layer of the library — the autograd hot paths, the
experiment runtime, the serving engine, the training loops — reports
into one :class:`MetricsRegistry` under a *dotted name* plus optional
string *labels*.  Four metric kinds cover the reporting surfaces:

- **counter** — monotonically accumulating events (``einsum.forward``,
  ``serve.requests``); carries ``calls`` plus optional ``seconds`` /
  ``bytes`` payloads folded in with each increment;
- **timer** — a counter whose every observation has a duration
  (``backward.sweep``, ``serve.run``);
- **gauge** — a last-value-wins measurement (``train.loss``,
  ``eval.accuracy``); ``calls`` counts how often it was set;
- **histogram** — exact-value occurrence buckets
  (``serve.batch.size`` → ``{"8": 3, "32": 1}``).

The registry preserves the contract the legacy flat profiler
guaranteed: **disabled reads cost a single attribute check**.  Hot
paths guard with ``if OBS.enabled:`` (or the short-circuit form
``OBS.enabled and OBS.inc(...)``) and never construct names, labels or
payloads when observability is off — a contract pinned by
``tests/obs/test_metrics.py``.

Snapshots serialize to the *unified metrics-snapshot schema* shared by
``EmbeddingEngine.stats()``, the ``counters`` sections of every
``BENCH_*.json`` record, and the per-span metric deltas in
``trace.jsonl``::

    {
      "<name>" | "<name>{k=v,...}": {
        "kind": "counter" | "timer" | "gauge" | "histogram",
        "calls": int,
        "seconds": float,
        "bytes": int,
        "value": float,          # gauges only: last value set
        "buckets": {str: int},   # histograms only
      }, ...
    }

:meth:`MetricsRegistry.merge` folds such a snapshot back into a
registry — the cross-process aggregation the experiment runtime uses to
merge worker counters into the parent, working even while the parent's
registry is disabled (the events were already gated in the worker).

The legacy ``repro.utils.profiling.PROFILER`` API survives as a shim
over this registry; see :meth:`MetricsRegistry.legacy_counters` for the
flat ``{name: {calls, seconds, bytes}}`` view it exposes (histogram
buckets flattened to the historical ``name.<bucket>`` dotted names).
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ObsError

#: The metric kinds the registry accepts.
KINDS = ("counter", "timer", "gauge", "histogram")


@dataclass
class MetricSeries:
    """Accumulated state of one ``(name, labels)`` series."""

    kind: str
    calls: int = 0
    seconds: float = 0.0
    bytes: int = 0
    value: float = 0.0
    buckets: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """This series in the unified metrics-snapshot schema."""
        payload: dict = {
            "kind": self.kind,
            "calls": self.calls,
            "seconds": self.seconds,
            "bytes": self.bytes,
        }
        if self.kind == "gauge":
            payload["value"] = self.value
        if self.kind == "histogram":
            payload["buckets"] = dict(self.buckets)
        return payload


def render_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """Canonical snapshot key: ``name`` or ``name{k=v,...}`` (keys sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


def parse_name(rendered: str) -> tuple[str, tuple[tuple[str, str], ...]]:
    """Invert :func:`render_name` (used when merging snapshots)."""
    if not rendered.endswith("}") or "{" not in rendered:
        return rendered, ()
    name, __, inner = rendered[:-1].partition("{")
    labels = []
    for chunk in inner.split(","):
        key, sep, value = chunk.partition("=")
        if not sep:
            raise ObsError(f"unparsable metric labels in {rendered!r}")
        labels.append((key, value))
    return name, tuple(sorted(labels))


def _label_key(labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class MetricsRegistry:
    """A process-wide (or local) registry of :class:`MetricSeries`.

    ``enabled`` is a plain attribute so the disabled fast path is one
    attribute read.  All record methods are silent no-ops while
    disabled; :meth:`merge` works regardless, since merged events were
    gated by their origin registry.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], MetricSeries] = {}

    # -- lifecycle ------------------------------------------------------------

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    def reset(self) -> None:
        self._series.clear()

    # -- series resolution ----------------------------------------------------

    def _series_for(
        self,
        name: str,
        labels: dict[str, object],
        kind: str,
        strict: bool = True,
    ) -> MetricSeries:
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = MetricSeries(kind=kind)
            return series
        if series.kind != kind and strict:
            raise ObsError(
                f"metric {render_name(*key)!r} is a {series.kind}, "
                f"not a {kind}; pick a distinct name per kind"
            )
        return series

    # -- typed record methods -------------------------------------------------

    def inc(
        self,
        name: str,
        n: int = 1,
        *,
        seconds: float = 0.0,
        bytes: int = 0,
        **labels: object,
    ) -> None:
        """Count ``n`` events on counter ``name`` (optionally with payloads)."""
        if not self.enabled or n <= 0:
            return
        series = self._series_for(name, labels, "counter")
        series.calls += n
        series.seconds += seconds
        series.bytes += bytes

    def observe(
        self, name: str, seconds: float, *, bytes: int = 0, **labels: object
    ) -> None:
        """Record one timed event on timer ``name``."""
        if not self.enabled:
            return
        series = self._series_for(name, labels, "timer")
        series.calls += 1
        series.seconds += seconds
        series.bytes += bytes

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set gauge ``name`` to ``value`` (last value wins)."""
        if not self.enabled:
            return
        series = self._series_for(name, labels, "gauge")
        series.calls += 1
        series.value = float(value)

    def hist(self, name: str, value: object, **labels: object) -> None:
        """Count one occurrence of ``value`` in histogram ``name``."""
        if not self.enabled:
            return
        series = self._series_for(name, labels, "histogram")
        series.calls += 1
        bucket = str(value)
        series.buckets[bucket] = series.buckets.get(bucket, 0) + 1

    @contextlib.contextmanager
    def time(self, name: str, **labels: object) -> Iterator[None]:
        """Time the block into timer ``name`` (no-op while disabled)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start, **labels)

    # -- legacy-profiler entry points (untyped) -------------------------------

    def record_legacy(
        self,
        name: str,
        calls: int = 1,
        seconds: float = 0.0,
        bytes: int = 0,
        kind: str = "counter",
    ) -> None:
        """Untyped fold for the ``PROFILER`` shim: reuse the series'
        existing kind if it differs (the legacy API had no kinds)."""
        if not self.enabled or calls <= 0:
            return
        series = self._series_for(name, {}, kind, strict=False)
        series.calls += calls
        series.seconds += seconds
        series.bytes += bytes

    # -- snapshots / merging --------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """The unified metrics-snapshot schema (JSON-friendly, sorted)."""
        return {
            render_name(name, labels): series.as_dict()
            for (name, labels), series in sorted(self._series.items())
        }

    #: Alias kept so callers migrating off ``PROFILER.as_dict()`` read well.
    as_dict = snapshot

    def merge(self, snapshot: dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` back into this registry.

        Works while disabled (worker events were gated at their origin).
        Gauges adopt the incoming value — for worker merge-back that
        means the last merged worker wins, matching last-value-wins
        semantics within a process.
        """
        for rendered, stats in snapshot.items():
            name, labels = parse_name(rendered)
            kind = stats.get("kind", "counter")
            if kind not in KINDS:
                raise ObsError(f"snapshot entry {rendered!r} has unknown kind {kind!r}")
            key = (name, labels)
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = MetricSeries(kind=kind)
            series.calls += int(stats.get("calls", 0))
            series.seconds += float(stats.get("seconds", 0.0))
            series.bytes += int(stats.get("bytes", 0))
            if kind == "gauge" and "value" in stats:
                series.value = float(stats["value"])
            for bucket, count in (stats.get("buckets") or {}).items():
                series.buckets[bucket] = series.buckets.get(bucket, 0) + int(count)

    def merge_legacy(self, counters: dict[str, dict]) -> None:
        """Fold an old flat ``{name: {calls, seconds, bytes}}`` snapshot."""
        for name, stats in counters.items():
            series = self._series_for(name, {}, "counter", strict=False)
            series.calls += int(stats.get("calls", 0))
            series.seconds += float(stats.get("seconds", 0.0))
            series.bytes += int(stats.get("bytes", 0))

    def totals(self) -> dict[str, tuple[int, float, int]]:
        """Cheap per-series ``(calls, seconds, bytes)`` totals, used by the
        tracer to compute per-span metric deltas."""
        return {
            render_name(name, labels): (series.calls, series.seconds, series.bytes)
            for (name, labels), series in self._series.items()
        }

    def legacy_counters(self) -> dict[str, dict[str, float]]:
        """The pre-redesign flat profiler format, derived from the registry.

        Counters/timers/gauges keep their dotted name with
        ``calls/seconds/bytes``; histograms flatten to one
        ``name.<bucket>`` entry per bucket — exactly the shape the old
        ``PROFILER.as_dict()`` produced (``serve.batch.size.<n>`` et al).
        """
        flat: dict[str, dict[str, float]] = {}
        for (name, labels), series in self._series.items():
            rendered = render_name(name, labels)
            if series.kind == "histogram":
                for bucket, count in series.buckets.items():
                    entry = flat.setdefault(
                        f"{rendered}.{bucket}",
                        {"calls": 0, "seconds": 0.0, "bytes": 0},
                    )
                    entry["calls"] += count
            else:
                entry = flat.setdefault(
                    rendered, {"calls": 0, "seconds": 0.0, "bytes": 0}
                )
                entry["calls"] += series.calls
                entry["seconds"] += series.seconds
                entry["bytes"] += series.bytes
        return dict(sorted(flat.items()))


#: The process-wide registry every instrumented layer reports into.
METRICS = MetricsRegistry()
