"""Unit tests for the core Tensor type and its arithmetic gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, tensor, zeros_like
from repro.autograd.tensor import unbroadcast
from repro.errors import GradientError, ShapeError


class TestConstruction:
    def test_wraps_array(self):
        t = Tensor(np.ones((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_int_input_becomes_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert np.issubdtype(t.dtype, np.floating)

    def test_tensor_factory_dtype(self):
        t = tensor([1.0, 2.0], dtype=np.float64)
        assert t.dtype == np.float64

    def test_scalar_item(self):
        assert tensor(3.5).item() == pytest.approx(3.5)

    def test_item_rejects_non_scalar(self):
        with pytest.raises(ShapeError):
            tensor([1.0, 2.0]).item()

    def test_zeros_like(self):
        t = tensor(np.ones((4, 2)))
        z = zeros_like(t)
        assert z.shape == (4, 2)
        assert np.all(z.data == 0)

    def test_len(self):
        assert len(tensor(np.zeros((5, 2)))) == 5

    def test_len_of_scalar_raises(self):
        with pytest.raises(ShapeError):
            len(tensor(1.0))

    def test_repr_mentions_grad(self):
        t = tensor(1.0, requires_grad=True)
        assert "requires_grad" in repr(t)


class TestBackwardMechanics:
    def test_simple_chain(self):
        x = tensor(2.0, requires_grad=True)
        y = x * x + x
        y.backward()
        assert x.grad == pytest.approx(5.0)  # 2x + 1 at x=2

    def test_grad_accumulates_across_backward_calls(self):
        x = tensor(1.0, requires_grad=True)
        (x * 2).backward()
        (x * 3).backward()
        assert x.grad == pytest.approx(5.0)

    def test_diamond_graph_accumulates_once_per_path(self):
        x = tensor(3.0, requires_grad=True)
        a = x * 2
        b = x * 5
        (a + b).backward()
        assert x.grad == pytest.approx(7.0)

    def test_deep_chain_does_not_recurse(self):
        x = tensor(1.0, requires_grad=True)
        y = x
        for __ in range(3000):
            y = y + 1.0
        y.backward()
        assert x.grad == pytest.approx(1.0)

    def test_backward_needs_scalar_or_gradient(self):
        x = tensor(np.ones(3), requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2).backward()

    def test_backward_with_explicit_gradient(self):
        x = tensor(np.ones(3), requires_grad=True)
        (x * 2).backward(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        assert np.allclose(x.grad, [2.0, 4.0, 6.0])

    def test_backward_gradient_shape_mismatch(self):
        x = tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ShapeError):
            (x * 2).backward(np.ones(4, dtype=np.float32))

    def test_backward_on_graphless_tensor_raises(self):
        with pytest.raises(GradientError):
            tensor(1.0).backward()

    def test_zero_grad(self):
        x = tensor(1.0, requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_cuts_graph(self):
        x = tensor(2.0, requires_grad=True)
        d = (x * 3).detach()
        assert d._parents == ()
        assert not d.requires_grad


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        x = tensor(2.0, requires_grad=True)
        with no_grad():
            y = x * x
        assert y._parents == ()

    def test_no_grad_restores_on_exit(self):
        x = tensor(2.0, requires_grad=True)
        with no_grad():
            pass
        y = x * x
        y.backward()
        assert x.grad is not None

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        x = tensor(2.0, requires_grad=True)
        (x * x).backward()
        assert x.grad is not None


class TestBroadcasting:
    def test_unbroadcast_sums_leading_axes(self):
        grad = np.ones((4, 3))
        assert unbroadcast(grad, (3,)).shape == (3,)
        assert np.allclose(unbroadcast(grad, (3,)), 4.0)

    def test_unbroadcast_sums_kept_axes(self):
        grad = np.ones((4, 3))
        out = unbroadcast(grad, (1, 3))
        assert out.shape == (1, 3)
        assert np.allclose(out, 4.0)

    def test_add_broadcast_gradients(self):
        a = tensor(np.ones((2, 3)), requires_grad=True)
        b = tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, 2.0)

    def test_mul_broadcast_gradients(self):
        a = tensor(np.full((2, 3), 2.0), requires_grad=True)
        b = tensor(np.full((1, 3), 3.0), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, 3.0)
        assert np.allclose(b.grad, 4.0)  # sum over the broadcast axis of 2 rows

    def test_scalar_plus_tensor(self):
        a = tensor(np.ones(3), requires_grad=True)
        y = 2.0 + a
        y.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_rsub_and_rdiv(self):
        a = tensor(np.full(3, 2.0), requires_grad=True)
        (10.0 - a).sum().backward()
        assert np.allclose(a.grad, -1.0)
        a.zero_grad()
        (8.0 / a).sum().backward()
        assert np.allclose(a.grad, -2.0)  # -8/a^2 = -2


class TestOpsNumerics:
    def test_matmul_vector_cases(self, rng):
        m = tensor(rng.normal(size=(3, 4)), requires_grad=True, dtype=np.float64)
        v = tensor(rng.normal(size=4), requires_grad=True, dtype=np.float64)
        out = m @ v
        assert out.shape == (3,)
        out.sum().backward()
        assert m.grad.shape == (3, 4)
        assert v.grad.shape == (4,)
        assert np.allclose(v.grad, m.data.sum(axis=0))

    def test_batched_matmul(self, rng):
        a = tensor(rng.normal(size=(5, 3, 4)), requires_grad=True, dtype=np.float64)
        b = tensor(rng.normal(size=(5, 4, 2)), requires_grad=True, dtype=np.float64)
        out = a @ b
        assert out.shape == (5, 3, 2)
        out.sum().backward()
        assert a.grad.shape == a.shape
        assert b.grad.shape == b.shape

    def test_pow_gradient(self):
        x = tensor(3.0, requires_grad=True)
        (x**3).backward()
        assert x.grad == pytest.approx(27.0)

    def test_pow_rejects_tensor_exponent(self):
        x = tensor(3.0, requires_grad=True)
        with pytest.raises(TypeError):
            x ** tensor(2.0)

    def test_neg(self):
        x = tensor(np.ones(3), requires_grad=True)
        (-x).sum().backward()
        assert np.allclose(x.grad, -1.0)

    def test_div_gradients(self):
        a = tensor(6.0, requires_grad=True)
        b = tensor(2.0, requires_grad=True)
        (a / b).backward()
        assert a.grad == pytest.approx(0.5)
        assert b.grad == pytest.approx(-1.5)

    def test_abs(self):
        x = tensor(np.array([-2.0, 3.0]), requires_grad=True)
        x.abs().sum().backward()
        assert np.allclose(x.grad, [-1.0, 1.0])

    def test_clip_gradient_zero_outside(self):
        x = tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])


class TestShaping:
    def test_reshape_roundtrip_gradient(self, rng):
        x = tensor(rng.normal(size=(2, 6)), requires_grad=True, dtype=np.float64)
        y = x.reshape(3, 4)
        y.sum().backward()
        assert x.grad.shape == (2, 6)

    def test_transpose_default_reverses(self):
        x = tensor(np.zeros((2, 3, 4)))
        assert x.T.shape == (4, 3, 2)

    def test_transpose_gradient_permutes_back(self, rng):
        x = tensor(rng.normal(size=(2, 3, 4)), requires_grad=True, dtype=np.float64)
        y = x.transpose(2, 0, 1)
        assert y.shape == (4, 2, 3)
        (y * 2).sum().backward()
        assert x.grad.shape == (2, 3, 4)
        assert np.allclose(x.grad, 2.0)

    def test_flatten(self):
        x = tensor(np.zeros((2, 3, 4)))
        assert x.flatten(1).shape == (2, 12)
        assert x.flatten().shape == (24,)

    def test_getitem_scatter_gradient(self):
        x = tensor(np.arange(6, dtype=np.float64).reshape(2, 3), requires_grad=True)
        x[0].sum().backward()
        assert np.allclose(x.grad, [[1, 1, 1], [0, 0, 0]])

    def test_getitem_fancy_index_repeats_accumulate(self):
        x = tensor(np.zeros(3), requires_grad=True)
        index = np.array([0, 0, 2])
        x[index].sum().backward()
        assert np.allclose(x.grad, [2.0, 0.0, 1.0])


class TestReductions:
    def test_sum_axis_tuple(self, rng):
        x = tensor(rng.normal(size=(2, 3, 4)), requires_grad=True, dtype=np.float64)
        x.sum(axis=(0, 2)).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_sum_negative_axis(self, rng):
        x = tensor(rng.normal(size=(2, 3)), requires_grad=True, dtype=np.float64)
        x.sum(axis=-1).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean_scales_gradient(self):
        x = tensor(np.zeros((2, 5)), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 0.1)

    def test_var_matches_numpy(self, rng):
        data = rng.normal(size=(3, 7))
        x = tensor(data, dtype=np.float64)
        assert np.allclose(x.var(axis=1).data, data.var(axis=1))

    def test_max_gradient_splits_ties(self):
        x = tensor(np.array([1.0, 2.0, 2.0]), requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.0, 0.5, 0.5])

    def test_max_axis_keepdims(self, rng):
        x = tensor(rng.normal(size=(4, 5)), dtype=np.float64)
        assert x.max(axis=1, keepdims=True).shape == (4, 1)
