"""The asyncio TCP serving frontend (``repro.serve.frontend``).

A stdlib-only network entry point over
:class:`~repro.serve.registry.MultiTenantEngine`: one asyncio server
accepts framed requests, admits them through the continuous-batching
:class:`~repro.serve.scheduler.BatchScheduler`, and streams results
back.  The wire speaks the same typed surface as everything else — each
frame decodes to a :class:`~repro.serve.api.ServeRequest` and each
response encodes a :class:`~repro.serve.api.ServeResult`.

Wire protocol (see docs/serving_frontend.md for the full spec)::

    frame   := u32_be header_len | header_json | u32_be payload_len | payload
    header  := JSON object (utf-8)
    payload := numpy ``.npy`` bytes (may be empty)

Request headers carry ``op`` (``serve`` | ``stats`` | ``ping``) and an
``id`` the response echoes — requests on one connection may be
pipelined and complete out of order, so clients match responses by
``id``.  ``serve`` requests put the sample in the payload and
``adapter`` / ``deadline`` / ``priority`` in the header; responses
carry ``status`` / ``error`` / ``timings`` in the header and the
embedding (when ``ok``) in the payload.

:class:`ServeClient` is the blocking stdlib-socket client used by tests
and the load generator: it sends one request at a time per connection,
so its response matching is trivial.  :meth:`ServingFrontend.start_in_thread`
runs the event loop on a daemon thread — the form in-process tests and
the load bench use.
"""

from __future__ import annotations

import asyncio
import socket
import threading

import numpy as np

from repro.errors import ServeError
from repro.obs import OBS
from repro.serve.api import ERROR, OK, ServeRequest, ServeResult, Timings
from repro.serve.codec import (
    _LEN,
    MAX_SEGMENT,
    _checked_length,
    decode_payload,
    encode_frame,
    encode_payload,
    read_frame as _read_frame,
    read_frame_sync as _read_frame_sync,
    recv_exactly as _recv_exactly,
)
from repro.serve.registry import MultiTenantEngine
from repro.serve.scheduler import BatchScheduler

__all__ = [
    "ServeClient",
    "ServingFrontend",
    "decode_payload",
    "encode_frame",
    "encode_payload",
]

# Framing lives in repro.serve.codec (shared with the shard IPC links);
# the private names above are re-exported for backwards compatibility.


# -- the server ---------------------------------------------------------------


class ServingFrontend:
    """Asyncio TCP server over one engine + continuous-batching scheduler.

    Parameters mirror :class:`~repro.serve.scheduler.BatchScheduler`
    (which the frontend owns unless handed one); ``host``/``port`` pick
    the bind address, ``port=0`` an ephemeral port (read it back from
    :attr:`address` after ``start``).

    ``scheduler`` may be anything speaking the scheduler surface —
    ``submit(request) -> Future[ServeResult]``, ``stats()``,
    ``close(drain_timeout)`` — which is how a
    :class:`~repro.serve.shard.ShardedEngine` mounts behind the same
    frontend (pass ``engine=None`` then; the frontend never touches the
    engine directly).
    """

    def __init__(
        self,
        engine: MultiTenantEngine | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        scheduler: object | None = None,
        queue_limit: int = 256,
        max_batch: int | None = None,
        target_batch_seconds: float = 0.025,
        drain_timeout: float | None = None,
        record_batches: int = 0,
    ) -> None:
        if scheduler is None and engine is None:
            raise ServeError("ServingFrontend needs an engine or a scheduler")
        self.engine = engine
        self.scheduler = (
            scheduler
            if scheduler is not None
            else BatchScheduler(
                engine,
                queue_limit=queue_limit,
                max_batch=max_batch,
                target_batch_seconds=target_batch_seconds,
                drain_timeout=drain_timeout,
                record_batches=record_batches,
            )
        )
        self.host = host
        self.port = int(port)
        self.address: tuple[str, int] | None = None
        self._server: asyncio.base_events.Server | None = None
        self._tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # -- async lifecycle ------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns ``(host, port)``."""
        if self._server is not None:
            raise ServeError("frontend already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], int(bound[1]))
        return self.address

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, close."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        tasks = [task for task in self._tasks if not task.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        # Drain the scheduler on a worker thread so the loop stays live.
        await asyncio.get_running_loop().run_in_executor(None, self.scheduler.close)

    # -- connection handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        in_flight: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    frame = await _read_frame(reader)
                except ServeError as exc:
                    await self._respond(
                        writer, write_lock, {"id": None, "status": ERROR, "error": str(exc)}
                    )
                    break
                if frame is None:
                    break
                task = asyncio.ensure_future(
                    self._handle_frame(writer, write_lock, *frame)
                )
                for tracker in (self._tasks, in_flight):
                    tracker.add(task)
                    task.add_done_callback(tracker.discard)
        finally:
            # EOF only ends *admission*; answer what was pipelined first.
            if in_flight:
                await asyncio.gather(*list(in_flight), return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        header: dict,
        payload: bytes = b"",
    ) -> None:
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(encode_frame(header, payload))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    async def _handle_frame(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        header: dict,
        payload: bytes,
    ) -> None:
        request_id = header.get("id")
        op = header.get("op", "serve")
        try:
            if op == "ping":
                await self._respond(writer, write_lock, {"id": request_id, "status": OK})
                return
            if op == "stats":
                header_out = {
                    "id": request_id,
                    "status": OK,
                    "stats": self.scheduler.stats(),
                }
                # Sharded schedulers also expose the per-shard breakdown;
                # the merged snapshot above stays the primary answer.
                shard_stats = getattr(self.scheduler, "shard_stats", None)
                if callable(shard_stats):
                    header_out["shards"] = shard_stats()
                await self._respond(writer, write_lock, header_out)
                return
            if op != "serve":
                raise ServeError(f"unknown op {op!r}")
            sample = decode_payload(payload)
            if sample is None:
                raise ServeError("serve frame carried no sample payload")
            request = ServeRequest(
                sample=sample,
                adapter=header.get("adapter"),
                deadline=header.get("deadline"),
                priority=int(header.get("priority", 0)),
            )
            OBS.enabled and OBS.inc("serve.request.wire")
            # Can still raise (e.g. rank-4 batched samples — batching is
            # the scheduler's job); the client gets an error frame, never
            # a hung connection.
            future = self.scheduler.submit(request)
        except (ServeError, ValueError, TypeError) as exc:
            await self._respond(
                writer,
                write_lock,
                {"id": request_id, "status": ERROR, "error": str(exc)},
            )
            return
        result = await asyncio.wrap_future(future)
        header_out = {
            "id": request_id,
            "status": result.status,
            "error": result.error,
            "timings": result.timings.as_dict(),
        }
        await self._respond(writer, write_lock, header_out, encode_payload(result.embedding))

    # -- thread helpers (in-process tests, load bench) ------------------------

    def start_in_thread(self, timeout: float = 10.0) -> tuple[str, int]:
        """Run the event loop on a daemon thread; returns the bound address."""
        if self._thread is not None:
            raise ServeError("frontend already running in a thread")
        started = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # surface bind errors to the caller
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-serve-frontend", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout):
            raise ServeError("frontend failed to start within the timeout")
        if failure:
            self._thread = None
            raise ServeError(f"frontend failed to start: {failure[0]}") from failure[0]
        assert self.address is not None
        return self.address

    def stop_in_thread(self, timeout: float = 10.0) -> None:
        """Gracefully stop a :meth:`start_in_thread` frontend."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            self.scheduler.close()
            return
        done = asyncio.run_coroutine_threadsafe(self.stop(), loop)
        try:
            done.result(timeout)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout)
            self._loop = None
            self._thread = None

    def __enter__(self) -> "ServingFrontend":
        self.start_in_thread()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop_in_thread()


# -- the blocking client ------------------------------------------------------


class ServeClient:
    """Blocking stdlib-socket client speaking the frame protocol.

    One request at a time per connection (send, then read the matching
    response), which is all tests and the open-loop load generator
    need; pipelining clients match responses by ``id`` instead.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._next_id = 0
        self._lock = threading.Lock()

    def _roundtrip(self, header: dict, payload: bytes = b"") -> tuple[dict, bytes]:
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
            header = dict(header, id=request_id)
            self._sock.sendall(encode_frame(header, payload))
            response, data = _read_frame_sync(self._sock)
        if response.get("id") != request_id:
            raise ServeError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        return response, data

    def serve(
        self,
        sample: np.ndarray,
        *,
        adapter: str | None = None,
        deadline: float | None = None,
        priority: int = 0,
    ) -> ServeResult:
        """Send one sample; returns the decoded :class:`ServeResult`."""
        header = {
            "op": "serve",
            "adapter": adapter,
            "deadline": deadline,
            "priority": int(priority),
        }
        response, data = self._roundtrip(header, encode_payload(np.asarray(sample)))
        return ServeResult(
            embedding=decode_payload(data),
            status=response.get("status", ERROR),
            timings=Timings.from_dict(response.get("timings") or {}),
            error=response.get("error"),
        )

    def stats(self, per_shard: bool = False) -> dict:
        """The server's unified metrics snapshot.

        ``per_shard=True`` returns ``{"merged": ..., "shards": {...}}``
        — the cross-shard breakdown a sharded server attaches (an empty
        ``shards`` dict on single-process servers).
        """
        response, __ = self._roundtrip({"op": "stats"})
        if response.get("status") != OK:
            raise ServeError(f"stats failed: {response.get('error')}")
        merged = response.get("stats") or {}
        if per_shard:
            return {"merged": merged, "shards": response.get("shards") or {}}
        return merged

    def ping(self) -> bool:
        response, __ = self._roundtrip({"op": "ping"})
        return response.get("status") == OK

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
