"""Graph-free compiled inference for embedding serving.

``compile_features`` lowers a model's ``features()`` into a flat program
of raw-numpy kernels (no Tensor wrapping, no autograd bookkeeping);
``EmbeddingEngine`` serves one program with micro-batching and an LRU
result cache, while ``AdapterRegistry`` + ``MultiTenantEngine`` serve a
fleet of *named* adapters — hot register/swap/evict, a shared LRU of
compiled programs, and cross-tenant micro-batching.  ``optimize``
supplies the compile-time pass pipeline: precision tiers
(f64/f32/int8), elementwise-chain fusion, the per-run arena allocator
and the thread-parallel slot scheduler.

Every path speaks one typed surface (``api``): ``ServeRequest`` in,
``ServeResult`` out — the engines' ``serve``/``enqueue``, the asyncio
TCP ``frontend`` with its continuous-batching ``scheduler``, and the
open-loop ``loadgen``.  See docs/serving.md and
docs/serving_frontend.md.
"""

from repro.serve.api import (
    DEADLINE_MISSED,
    ERROR,
    OK,
    REJECTED,
    STATUSES,
    ServeRequest,
    ServeResult,
    Timings,
    ingest_sample,
)
from repro.serve.optimize import (
    PRECISIONS,
    Arena,
    fuse_program,
    quantize_weight,
    resolve_precision,
)
from repro.serve.compile import (
    CompiledProgram,
    ProgramBuilder,
    compile_features,
    compile_forward,
    compile_seed_mapping,
    compiles,
    compiles_features,
)
from repro.serve.engine import (
    ENGINES,
    EmbeddingEngine,
    Engines,
    build_engine,
)
from repro.serve.registry import (
    AdapterEntry,
    AdapterRegistry,
    MultiTenantEngine,
    ProgramCache,
    ProgramKey,
    program_key,
)
from repro.serve.scheduler import BatchScheduler
from repro.serve.shard import ShardedEngine, TenantSpec
from repro.serve.frontend import ServeClient, ServingFrontend
from repro.serve.loadgen import run_load
from repro.serve.codec import MAX_SEGMENT, decode_payload, encode_payload

__all__ = [
    "AdapterEntry",
    "AdapterRegistry",
    "Arena",
    "BatchScheduler",
    "CompiledProgram",
    "DEADLINE_MISSED",
    "EmbeddingEngine",
    "ENGINES",
    "ERROR",
    "Engines",
    "MAX_SEGMENT",
    "MultiTenantEngine",
    "OK",
    "PRECISIONS",
    "ProgramBuilder",
    "ProgramCache",
    "ProgramKey",
    "REJECTED",
    "STATUSES",
    "ServeClient",
    "ServeRequest",
    "ServeResult",
    "ServingFrontend",
    "ShardedEngine",
    "TenantSpec",
    "Timings",
    "build_engine",
    "compile_features",
    "compile_forward",
    "compile_seed_mapping",
    "compiles",
    "compiles_features",
    "decode_payload",
    "encode_payload",
    "fuse_program",
    "ingest_sample",
    "program_key",
    "quantize_weight",
    "resolve_precision",
    "run_load",
]
