"""The ``repro bench`` performance harness.

Times the optimized hot paths against the reference implementation —
in the same process, flipped via :func:`repro.perf.perf_overrides` — and
writes one JSON record per suite:

- ``BENCH_autograd.json`` — micro-benchmarks of the einsum plan cache /
  contraction planner and the conv2d patch cache, with per-case speedup
  and the max |optimized - reference| output gap;
- ``BENCH_table1.json`` — the Table I protocol micro-bench: one episodic
  training step (forward + backward) of a MetaLoRA model at reduced
  scale, reference vs. optimized;
- ``BENCH_serve.json`` — the serving bench: embedding throughput and
  per-request latency of the compiled ``repro.serve`` engine against the
  naive per-sample and batched autograd paths, with the compiled-vs-
  reference bit-exactness check asserted in-process (``max_abs_diff``
  is exactly ``0.0`` or the bench raises);
- ``BENCH_load.json`` (opt-in, ``--suite load``) — the end-to-end load
  bench: an open-loop Poisson generator drives the asyncio TCP
  ``ServingFrontend`` over real sockets at >= 3 offered-load levels
  bracketing measured capacity, recording throughput vs offered load,
  p50/p99/p999 latency, rejected / deadline-missed counts and the
  queue-depth and batch-size distributions; the first dispatched
  batches are replayed through ``MultiTenantEngine.serve`` directly and
  asserted bit-identical (``bit_identical`` is ``true`` or the bench
  raises).

Record schema (``validate_bench_record`` enforces it; the bench smoke
test round-trips it)::

    {
      "schema": "repro.bench/v1",
      "kind": "autograd" | "table1" | "serve",   # "load" has its own shape
      "scale": "tiny" | "small",
      "repeats": int,
      "entries": [
        {
          "name": str,
          "reference_seconds": float,   # best-of-``repeats`` wall time
          "optimized_seconds": float,
          "speedup": float,             # reference / optimized
          "max_abs_diff": float,        # output gap between the paths
          "counters": {str: {"kind": str, "calls": int,
                             "seconds": float, "bytes": int, ...}},
        }, ...
      ],
      "summary": {"min_speedup": float, "geomean_speedup": float},
    }

``counters`` holds the :data:`repro.obs.OBS` snapshot of the optimized
run (cache hit/miss counts, op calls, bytes) in the unified
metrics-snapshot schema — the same shape ``EmbeddingEngine.stats()``
returns, with histograms carrying ``buckets`` and gauges ``value``.

The ``table1`` record optionally carries a ``parallel`` section (when the
bench ran with ``--jobs N``, N >= 2) — the grid-runtime comparison from
:func:`run_table1_parallel_bench`::

    "parallel": {
      "jobs": int, "host_cpus": int, "seeds": [int], "cells": int,
      "per_cell_serial_seconds": float,   # naive sharding: context per cell
      "seed_loop_serial_seconds": float,  # pre-runtime serial loop
      "parallel_seconds": float,          # run_table1_grid at `jobs`
      "speedup": float,                   # per_cell_serial / parallel
      "speedup_vs_seed_loop": float,
      "rows_equal": true,                 # bit-identity asserted in-process
    }

``serve`` entries reinterpret the shared fields — ``reference_seconds``
is the naive per-sample autograd total over the sample set,
``optimized_seconds`` the compiled engine's batched total over the same
samples (both timed under the *same* default flags, since the exactness
contract is compiled-vs-reference, not optimized-vs-reference) — and add
``samples``, ``batch_size``, ``batched_autograd_seconds``, ``throughput``
(samples/sec: ``naive_per_sample`` / ``batched_autograd`` / ``compiled``)
and ``latency_ms`` (per-request ``naive_p50/p99`` and ``compiled_p50/p99``).
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable

import numpy as np

from repro.autograd import conv_ops, ops
from repro.autograd.tensor import Tensor
from repro.errors import ConfigError
from repro.obs import OBS
from repro.obs.metrics import KINDS
from repro.perf import reference_mode
from repro.utils.timing import time_calls

SCHEMA = "repro.bench/v1"

#: problem sizes per scale; "tiny" is the CI smoke setting.
_SCALES = {
    "tiny": {"batch": 4, "tokens": 8, "rank": 4, "features": 32, "image": 12, "channels": 8},
    "small": {"batch": 16, "tokens": 16, "rank": 8, "features": 128, "image": 16, "channels": 16},
}


def _clear_caches() -> None:
    ops.clear_einsum_plan_cache()
    conv_ops.clear_conv_caches()


def _measure(
    fn: Callable[[], np.ndarray], repeats: int
) -> tuple[dict[str, float], np.ndarray, dict]:
    """Time ``fn`` under reference then optimized flags.

    Returns the timing/diff record fields, the reference output (for
    callers that chain checks), and the optimized run's metrics snapshot
    (unified schema, from :data:`repro.obs.OBS`).
    """
    with reference_mode():
        _clear_caches()
        ref_seconds, ref_out = time_calls(fn, repeats=repeats)
    _clear_caches()
    OBS.reset()
    OBS.enable()
    try:
        opt_seconds, opt_out = time_calls(fn, repeats=repeats)
    finally:
        OBS.disable()
    counters = OBS.as_dict()
    diff = float(np.max(np.abs(np.asarray(ref_out) - np.asarray(opt_out))))
    fields = {
        "reference_seconds": float(ref_seconds),
        "optimized_seconds": float(opt_seconds),
        "speedup": float(ref_seconds / max(opt_seconds, 1e-12)),
        "max_abs_diff": diff,
    }
    return fields, ref_out, counters


def _entry(name: str, fn: Callable[[], np.ndarray], repeats: int) -> dict:
    fields, __, counters = _measure(fn, repeats)
    return {"name": name, **fields, "counters": counters}


# -- autograd micro-benches ----------------------------------------------------


def _tr_linear_case(sizes: dict) -> Callable[[], np.ndarray]:
    """The MetaLoRA-TR linear contraction, forward + backward."""
    rng = np.random.default_rng(0)
    n, t, r, o = sizes["batch"], sizes["tokens"], sizes["rank"], sizes["features"]
    t1 = rng.standard_normal((n, t, r, r))
    core_b = rng.standard_normal((r, o, r))
    seed = rng.standard_normal((n, r, r))

    def fn() -> np.ndarray:
        a = Tensor(t1, requires_grad=True)
        b = Tensor(core_b, requires_grad=True)
        c = Tensor(seed, requires_grad=True)
        out = ops.einsum("ntpr,roq,nqp->nto", a, b, c)
        out.sum().backward()
        return np.concatenate([out.data.ravel(), b.grad.ravel()])

    return fn


def _cp_conv_case(sizes: dict) -> Callable[[], np.ndarray]:
    """The MetaLoRA-CP conv mixing contraction, forward + backward."""
    rng = np.random.default_rng(1)
    n, r, o, hw = sizes["batch"], sizes["rank"], sizes["features"], sizes["image"]
    mid = rng.standard_normal((n, r, hw, hw))
    seed = rng.standard_normal((n, r))
    factor_b = rng.standard_normal((r, o))

    def fn() -> np.ndarray:
        m = Tensor(mid, requires_grad=True)
        s = Tensor(seed, requires_grad=True)
        b = Tensor(factor_b, requires_grad=True)
        out = ops.einsum("nrhw,nr,ro->nohw", m, s, b)
        out.sum().backward()
        return np.concatenate([out.data.ravel(), s.grad.ravel()])

    return fn


def _paired_conv_case(sizes: dict) -> Callable[[], np.ndarray]:
    """Base conv + adapter conv over the same activations (patch-cache hit)."""
    rng = np.random.default_rng(2)
    n, c, hw, r = sizes["batch"], sizes["channels"], sizes["image"], sizes["rank"]
    x = Tensor(rng.standard_normal((n, c, hw, hw)))
    w_base = Tensor(rng.standard_normal((3, 3, c, c)) * 0.1, requires_grad=True)
    w_adapter = Tensor(rng.standard_normal((3, 3, c, r)) * 0.1, requires_grad=True)

    def fn() -> np.ndarray:
        base = conv_ops.conv2d(x, w_base, None, stride=1, padding=1)
        delta = conv_ops.conv2d(x, w_adapter, None, stride=1, padding=1)
        loss = base.sum() + delta.sum()
        loss.backward()
        out = np.concatenate([base.data.ravel(), delta.data.ravel()])
        w_base.zero_grad()
        w_adapter.zero_grad()
        return out

    return fn


def run_autograd_bench(scale: str = "tiny", repeats: int = 3) -> dict:
    """Reference-vs-optimized timings for the autograd hot paths."""
    sizes = _SCALES[scale]
    entries = [
        _entry("einsum.tr_linear_fwd_bwd", _tr_linear_case(sizes), repeats),
        _entry("einsum.cp_conv_fwd_bwd", _cp_conv_case(sizes), repeats),
        _entry("conv2d.paired_same_input", _paired_conv_case(sizes), repeats),
    ]
    return _finish_record("autograd", scale, repeats, entries)


# -- Table I protocol micro-bench ---------------------------------------------


def _meta_step_case(sizes: dict) -> Callable[[], np.ndarray]:
    """One Table I adaptation step: MetaLoRA-TR forward + backward."""
    from repro.models import FeatureExtractor, resnet_small
    from repro.peft import MetaLoRAModel, attach
    from repro.train.losses import cross_entropy
    from repro.utils.rng import new_rng

    rng = new_rng(0)
    num_classes = 4
    backbone = resnet_small(num_classes, rng)
    result = attach(backbone, "meta_tr", rank=sizes["rank"] // 2 or 2, rng=rng)
    extractor = FeatureExtractor(resnet_small(num_classes, new_rng(1)))
    model = MetaLoRAModel(backbone, extractor, rng=rng, adapters=result)
    data_rng = np.random.default_rng(2)
    x = Tensor(data_rng.normal(size=(sizes["batch"], 3, 16, 16)).astype(np.float32))
    labels = data_rng.integers(0, num_classes, size=sizes["batch"])

    def fn() -> np.ndarray:
        model.zero_grad()
        logits = model(x)
        loss = cross_entropy(logits, labels)
        loss.backward()
        grads = [
            p.grad.ravel() for p in model.trainable_parameters() if p.grad is not None
        ]
        return np.concatenate([logits.data.ravel(), loss.data.reshape(1)] + grads)

    return fn


def run_table1_bench(scale: str = "tiny", repeats: int = 3, jobs: int = 1) -> dict:
    """Reference-vs-optimized timing of the Table I protocol training step.

    With ``jobs > 1`` the record also gains a ``parallel`` section from
    :func:`run_table1_parallel_bench` — the grid-runtime wall-clock
    comparison, with the serial/parallel equality check asserted
    in-process.
    """
    sizes = _SCALES[scale]
    entries = [_entry("table1.meta_tr_train_step", _meta_step_case(sizes), repeats)]
    record = _finish_record("table1", scale, repeats, entries)
    if jobs > 1:
        record["parallel"] = run_table1_parallel_bench(scale=scale, jobs=jobs)
        validate_bench_record(record)
    return record


# -- Table I grid parallel bench ----------------------------------------------

#: seeds for the parallel grid bench per scale (methods come from the config).
_PARALLEL_SEEDS = {"tiny": (0, 1), "small": (0, 1, 2)}


def _parallel_bench_config():
    """The seeded Table I grid the parallel bench runs: the quick protocol
    config with the *full* protocol's pretraining workload (samples and
    epochs), so the per-seed context cost the runtime shares across cells
    is represented at its real proportion."""
    from dataclasses import replace as dc_replace

    from repro.eval.protocol import Table1Config

    full = Table1Config()
    return dc_replace(
        full.quick(),
        pretrain_samples=full.pretrain_samples,
        pretrain_epochs=full.pretrain_epochs,
    )


def _rows_equal(a: dict, b: dict) -> bool:
    """Exact (bit-level) equality of two method->Table1Row mappings."""
    if set(a) != set(b):
        return False
    return all(a[m].accuracy_by_k == b[m].accuracy_by_k for m in a)


def run_table1_parallel_bench(
    scale: str = "tiny",
    jobs: int = 4,
    seeds: tuple[int, ...] | None = None,
    config=None,
) -> dict:
    """Serial-vs-parallel wall-clock of the Table I ``(method, seed)`` grid.

    Three executions of the *same* grid, all required to produce
    bit-identical rows (asserted in-process; the record only exists if the
    check passed):

    - ``per_cell_serial_seconds`` — every cell run independently, one at a
      time, each rebuilding its seed context (what naive cell sharding
      would do: pretraining redone per cell);
    - ``seed_loop_serial_seconds`` — the pre-runtime serial baseline,
      ``[run_table1(config, seed) for seed in seeds]`` (context shared
      within a seed, one process);
    - ``parallel_seconds`` — :func:`repro.runtime.run_table1_grid` at
      ``jobs`` workers: contexts prepared once per seed in the pool, cells
      sharded across workers with the autograd memory diet enabled.

    ``speedup`` is ``per_cell_serial / parallel`` — what the runtime saves
    over naive sharding.  ``speedup_vs_seed_loop`` is
    ``seed_loop_serial / parallel``; on a single-CPU host (see
    ``host_cpus``) it hovers near 1 and the win comes from context
    sharing, while on a multicore host both multiply with the pool.
    Timings are single-pass (the grid is too large for best-of-repeats).
    """
    from repro.eval.protocol import (
        prepare_table1_seed,
        run_table1,
        run_table1_cell,
    )
    from repro.runtime import run_table1_grid

    if config is None:
        config = _parallel_bench_config()
    if seeds is None:
        seeds = _PARALLEL_SEEDS.get(scale, _PARALLEL_SEEDS["tiny"])

    start = time.perf_counter()
    per_cell_rows = []
    for seed in seeds:
        rows = {}
        for method in config.methods:
            context = prepare_table1_seed(config, seed)  # rebuilt per cell
            rows[method] = run_table1_cell(config, context, method)
        per_cell_rows.append(rows)
    per_cell_seconds = time.perf_counter() - start

    start = time.perf_counter()
    seed_loop_rows = [run_table1(config, seed) for seed in seeds]
    seed_loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    grid = run_table1_grid(config, seeds, jobs=jobs)
    parallel_seconds = time.perf_counter() - start

    for serial, pooled in zip(per_cell_rows, grid.rows_by_seed):
        if not _rows_equal(serial, pooled):
            raise ValueError(
                "parallel Table I rows diverged from the per-cell serial rows"
            )
    for serial, pooled in zip(seed_loop_rows, grid.rows_by_seed):
        if not _rows_equal(serial, pooled):
            raise ValueError(
                "parallel Table I rows diverged from the seed-loop serial rows"
            )

    return {
        "jobs": int(jobs),
        "host_cpus": int(os.cpu_count() or 1),
        "seeds": [int(s) for s in seeds],
        "cells": len(seeds) * len(config.methods),
        "per_cell_serial_seconds": float(per_cell_seconds),
        "seed_loop_serial_seconds": float(seed_loop_seconds),
        "parallel_seconds": float(parallel_seconds),
        "speedup": float(per_cell_seconds / max(parallel_seconds, 1e-12)),
        "speedup_vs_seed_loop": float(
            seed_loop_seconds / max(parallel_seconds, 1e-12)
        ),
        "rows_equal": True,
    }


# -- robustness-under-shift bench ---------------------------------------------

#: seeds for the robustness grid bench per scale.
_ROBUSTNESS_SEEDS = {"tiny": (0,), "small": (0, 1)}


def _robustness_bench_config(
    methods: tuple[str, ...] | None = None,
    corruptions: tuple[str, ...] | None = None,
    severities: tuple[int, ...] | None = None,
):
    """The seeded robustness grid the bench runs: the quick Table I
    protocol (training is the bottleneck; corruption cells are
    evaluation-only) over the full corruption catalog by default."""
    from dataclasses import replace as dc_replace

    from repro.eval.robustness import RobustnessConfig

    config = RobustnessConfig().quick()
    overrides: dict = {}
    if methods is not None:
        overrides["table1"] = dc_replace(config.table1, methods=tuple(methods))
        stream_methods = tuple(
            m for m in config.stream_methods if m in methods
        ) or (methods[0],)
        overrides["stream_methods"] = stream_methods
    if corruptions is not None:
        overrides["corruptions"] = tuple(corruptions)
    if severities is not None:
        overrides["severities"] = tuple(severities)
    return dc_replace(config, **overrides) if overrides else config


def _cells_equal(a: dict, b: dict) -> bool:
    """Exact (bit-level) equality of two key->RobustnessCell mappings."""
    if set(a) != set(b):
        return False
    return all(a[key].accuracy_by_k == b[key].accuracy_by_k for key in a)


def run_robustness_bench(
    scale: str = "tiny",
    repeats: int = 1,
    jobs: int = 2,
    seeds: tuple[int, ...] | None = None,
    methods: tuple[str, ...] | None = None,
    corruptions: tuple[str, ...] | None = None,
    severities: tuple[int, ...] | None = None,
) -> dict:
    """The robustness-under-shift benchmark matrix (``BENCH_robustness.json``).

    Runs the ``seeds × methods × corruptions × severities`` grid
    (:func:`repro.runtime.run_robustness_grid`) and asserts its three
    bit-identity pins **in-process** — the record only exists if every
    check passed:

    - **severity-0** cells equal the clean Table I evaluation
      (``run_table1``) exactly;
    - the **parallel** grid (``jobs`` workers) equals the serial one;
    - a **resumed** grid (two checkpoints deleted, then ``resume=``)
      equals the serial one.

    On top of the per-cell accuracies the record carries per-method
    degradation slopes (accuracy lost per severity rung, least squares),
    the MetaLoRA-vs-static-LoRA delta on corrupted cells (the headline
    number), and the streaming-drift section
    (:func:`repro.eval.robustness.run_robustness_stream`).
    """
    import shutil
    import tempfile

    from repro.eval.protocol import run_table1
    from repro.eval.robustness import degradation_slope, run_robustness_stream
    from repro.runtime import run_robustness_grid

    if scale not in _SCALES:
        raise ConfigError(f"scale must be one of {sorted(_SCALES)}")
    config = _robustness_bench_config(methods, corruptions, severities)
    table1 = config.table1
    if seeds is None:
        seeds = _ROBUSTNESS_SEEDS.get(scale, _ROBUSTNESS_SEEDS["tiny"])
    seeds = tuple(int(s) for s in seeds)
    if 0 not in config.severities:
        raise ConfigError("the robustness bench needs severity 0 (the clean pin)")

    # Serial grid, checkpointing into a scratch run dir (reused by the
    # resume pin below).  Timing includes checkpoint writes.
    scratch = tempfile.mkdtemp(prefix="robustness_bench_")
    try:
        start = time.perf_counter()
        serial = run_robustness_grid(config, seeds, jobs=1, out_dir=scratch)
        serial_seconds = time.perf_counter() - start

        # Pin 1: severity-0 cells == the clean Table I evaluation.
        for seed in seeds:
            clean = run_table1(table1, seed)
            for method in table1.methods:
                for corruption in config.corruptions:
                    cell = serial.cells[(seed, method, corruption, 0)]
                    if cell.accuracy_by_k != clean[method].accuracy_by_k:
                        raise ValueError(
                            f"severity-0 cell {(seed, method, corruption)} "
                            f"diverged from the clean Table I evaluation"
                        )

        # Pin 2: parallel == serial.
        start = time.perf_counter()
        parallel = run_robustness_grid(config, seeds, jobs=jobs)
        parallel_seconds = time.perf_counter() - start
        if not _cells_equal(serial.cells, parallel.cells):
            raise ValueError("parallel robustness cells diverged from serial")

        # Pin 3: resumed == serial.  Drop two checkpoints (first and last
        # in filename order, typically different (seed, method) groups so
        # the resume also rebuilds contexts) and resume the run dir.
        cells_dir = os.path.join(scratch, "cells")
        files = sorted(
            name for name in os.listdir(cells_dir) if name.endswith(".npz")
        )
        removed = [files[0], files[-1]]
        for name in removed:
            os.unlink(os.path.join(cells_dir, name))
        resumed = run_robustness_grid(config, seeds, jobs=1, resume=scratch)
        if not _cells_equal(serial.cells, resumed.cells):
            raise ValueError("resumed robustness cells diverged from serial")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    # Mean accuracy over seeds and ks per (method, corruption, severity).
    def mean_accuracy(method: str, corruption: str, severity: int) -> float:
        values = []
        for seed in seeds:
            cell = serial.cells[(seed, method, corruption, severity)]
            values.extend(cell.accuracy_by_k[k] for k in table1.ks)
        return float(np.mean(values))

    severities_sorted = sorted(config.severities)
    slopes: dict[str, dict] = {}
    for method in table1.methods:
        per_corruption = {}
        for corruption in config.corruptions:
            per_corruption[corruption] = degradation_slope(
                severities_sorted,
                [mean_accuracy(method, corruption, s) for s in severities_sorted],
            )
        slopes[method] = {
            "per_corruption": per_corruption,
            "mean": float(np.mean(list(per_corruption.values()))),
        }

    # Headline: MetaLoRA-vs-static-LoRA accuracy delta, on corrupted cells.
    baseline = "lora"
    meta_methods = [
        m for m in table1.methods if m in ("meta_lora_cp", "meta_lora_tr")
    ]
    if baseline not in table1.methods or not meta_methods:
        raise ConfigError(
            "the robustness bench needs 'lora' plus a meta method "
            "for the headline delta"
        )

    def delta_at(severity_filter) -> float:
        deltas = []
        for corruption in config.corruptions:
            for severity in config.severities:
                if not severity_filter(severity):
                    continue
                meta = np.mean(
                    [mean_accuracy(m, corruption, severity) for m in meta_methods]
                )
                deltas.append(meta - mean_accuracy(baseline, corruption, severity))
        return float(np.mean(deltas))

    headline = {
        "baseline": baseline,
        "meta_methods": meta_methods,
        "corrupted_delta": delta_at(lambda s: s > 0),
        "clean_delta": delta_at(lambda s: s == 0),
    }

    stream = run_robustness_stream(config, seeds[0])

    cells = [
        {
            "seed": int(seed),
            "method": method,
            "corruption": corruption,
            "severity": int(severity),
            "accuracy_by_k": {
                str(k): float(v) for k, v in cell.accuracy_by_k.items()
            },
        }
        for (seed, method, corruption, severity), cell in sorted(
            serial.cells.items()
        )
    ]

    record = {
        "schema": SCHEMA,
        "kind": "robustness",
        "scale": scale,
        "repeats": int(repeats),
        "grid": {
            "backbone": table1.backbone,
            "seeds": [int(s) for s in seeds],
            "methods": list(table1.methods),
            "corruptions": list(config.corruptions),
            "severities": [int(s) for s in config.severities],
            "ks": [int(k) for k in table1.ks],
        },
        "cells": cells,
        "severity0_bit_identical": True,
        "parallel": {
            "jobs": int(jobs),
            "host_cpus": int(os.cpu_count() or 1),
            "serial_seconds": float(serial_seconds),
            "parallel_seconds": float(parallel_seconds),
            "cells_equal": True,
        },
        "resume": {
            "removed_cells": len(removed),
            "restored_cells": len(resumed.restored),
            "cells_equal": True,
        },
        "slopes": slopes,
        "headline": headline,
        "stream": stream,
        "summary": {"headline_delta": headline["corrupted_delta"]},
    }
    validate_bench_record(record)
    return record


# -- serving bench -------------------------------------------------------------

#: sample-set and chunk sizes for the serve bench per scale.
_SERVE_SCALES = {
    "tiny": {"samples": 16, "image": 16, "batch": 8},
    "small": {"samples": 64, "image": 16, "batch": 16},
}

#: request-mix sizes for the multi-tenant serve bench per scale.
_MULTI_TENANT_SCALES = {
    "tiny": {"rounds": 4, "per_tenant": 1},
    "small": {"rounds": 8, "per_tenant": 2},
}


def _serve_models() -> list[tuple[str, object]]:
    """The Table I backbones plus a meta-adapted resnet (the unmergeable case)."""
    from repro.models import FeatureExtractor, mixer_small, resnet_small
    from repro.peft import MetaLoRAModel, attach
    from repro.utils.rng import new_rng

    num_classes = 4
    models: list[tuple[str, object]] = [
        ("resnet", resnet_small(num_classes, new_rng(0))),
        ("mixer", mixer_small(num_classes, new_rng(1))),
    ]
    backbone = resnet_small(num_classes, new_rng(2))
    result = attach(backbone, "meta_tr", rank=2, rng=new_rng(3))
    extractor = FeatureExtractor(resnet_small(num_classes, new_rng(4)))
    meta = MetaLoRAModel(backbone, extractor, rng=new_rng(5), adapters=result)
    # The B-side factors are zero-initialized (adapters start as identity);
    # randomize them so the exactness check exercises a nonzero delta path.
    param_rng = np.random.default_rng(6)
    for param in meta.parameters():
        if not np.any(param.data):
            param.data[...] = (
                param_rng.normal(size=param.data.shape) * 0.2
            ).astype(param.data.dtype)
    models.append(("resnet+meta_tr", meta))
    return models


def _time_per_sample(fn: Callable[[int], object], count: int, repeats: int) -> tuple[float, list[float]]:
    """Best-of-``repeats`` total seconds for ``count`` single-sample calls,
    plus the per-call latencies of the best pass."""
    best_total, best_latencies = float("inf"), [0.0]
    for __ in range(repeats):
        latencies = []
        for index in range(count):
            start = time.perf_counter()
            fn(index)
            latencies.append(time.perf_counter() - start)
        total = sum(latencies)
        if total < best_total:
            best_total, best_latencies = total, latencies
    return best_total, best_latencies


def _percentile_ms(latencies: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies) * 1e3, q))


def _multi_tenant_models(tenants: int) -> tuple[object, list[object]]:
    """One merged-LoRA static tenant plus ``tenants - 1`` MetaLoRA tenants.

    The meta tenants are built from identical seeds and then given distinct
    mapping-net weights: byte-identical extractor/backbone states mean the
    registry shares one extractor and one body program across all of them,
    which is what makes their requests stackable.
    """
    from repro.models import FeatureExtractor, resnet_small
    from repro.peft import MetaLoRAModel, attach
    from repro.utils.rng import new_rng

    num_classes = 4

    def randomize_zeros(model: object, rng: np.random.Generator) -> None:
        for param in model.parameters():
            if not np.any(param.data):
                param.data[...] = (
                    rng.normal(size=param.data.shape) * 0.2
                ).astype(param.data.dtype)

    backbone = resnet_small(num_classes, new_rng(20))
    static = attach(backbone, "lora", rank=2, rng=new_rng(21))
    randomize_zeros(backbone, np.random.default_rng(22))

    metas = []
    for index in range(tenants - 1):
        meta_backbone = resnet_small(num_classes, new_rng(30))
        result = attach(meta_backbone, "meta_tr", rank=2, rng=new_rng(31))
        extractor = FeatureExtractor(resnet_small(num_classes, new_rng(32)))
        meta = MetaLoRAModel(meta_backbone, extractor, rng=new_rng(33), adapters=result)
        randomize_zeros(meta, np.random.default_rng(34))
        if index:  # tenant-specific fine-tune: perturb only the mapping net
            mapping_rng = np.random.default_rng(40 + index)
            meta.trunk.weight.data[...] += (
                mapping_rng.normal(size=meta.trunk.weight.data.shape) * 0.05
            )
            for head in meta.heads:
                head.weight.data[...] += (
                    mapping_rng.normal(size=head.weight.data.shape) * 0.05
                )
        metas.append(meta)
    return static, metas


def build_shard_tenant(kind: str, index: int = 0) -> object:
    """Rebuild one load-bench tenant *architecture* in a shard process.

    The importable builder :class:`~repro.serve.shard.ShardedEngine`
    ships to its workers: it only has to recreate the module graph with
    the right shapes — the authoritative weights arrive separately as
    the parent's ``state_dict`` and overwrite whatever the seeds here
    produce (the digest check proves it).  Seeds mirror
    :func:`_multi_tenant_models` so the architectures are identical.
    """
    from repro.models import FeatureExtractor, resnet_small
    from repro.peft import MetaLoRAModel, attach
    from repro.utils.rng import new_rng

    if kind == "static":
        backbone = resnet_small(4, new_rng(20))
        return attach(backbone, "lora", rank=2, rng=new_rng(21))
    if kind != "meta":
        raise ConfigError(f"unknown shard tenant kind {kind!r} (static|meta)")
    meta_backbone = resnet_small(4, new_rng(30))
    result = attach(meta_backbone, "meta_tr", rank=2, rng=new_rng(31))
    extractor = FeatureExtractor(resnet_small(4, new_rng(32)))
    return MetaLoRAModel(meta_backbone, extractor, rng=new_rng(33), adapters=result)


def _embed_chunked(engine, images: np.ndarray, batch_size: int) -> np.ndarray:
    """Bulk embeddings through the typed API, chunked like the old ``embed``.

    Chunk boundaries match ``extract_embeddings``, so rows stay
    bit-identical to the reference path.
    """
    from repro.serve import ServeRequest

    requests = [
        ServeRequest(sample=images[start : start + batch_size])
        for start in range(0, images.shape[0], batch_size)
    ]
    return np.concatenate(
        [result.require() for result in engine.serve(requests)], axis=0
    )


def run_multi_tenant_bench(
    scale: str = "tiny", repeats: int = 3, tenants: int = 4, swaps: int = 1
) -> dict:
    """Cross-tenant stacking vs per-tenant serial dispatch, plus churn.

    Serves ``rounds`` rounds of a heterogeneous request mix (every tenant
    contributes ``per_tenant`` samples per round) two ways through the
    *same* :class:`~repro.serve.registry.MultiTenantEngine`:

    - **serial**: one ``dispatch()`` call per request — no cross-tenant
      batching, the per-tenant-deployment baseline;
    - **grouped**: one ``dispatch()`` call per round — seed-slot tenants
      sharing extractor/body programs get stacked into shared runs.

    Both paths are asserted bit-identical to per-tenant single-engine
    references in-process, so a record with ``bit_identical: false``
    cannot be produced.  ``swaps`` hot-swaps are applied afterwards and
    asserted to change the swapped tenant's output.
    """
    from repro.serve import MultiTenantEngine, ServeRequest, build_engine

    def serve_pairs(engine: MultiTenantEngine, pairs: list) -> list[np.ndarray]:
        requests = [ServeRequest(sample=sample, adapter=name) for name, sample in pairs]
        return [result.require() for result in engine.serve(requests)]

    if tenants < 3:
        raise ValueError(
            f"multi-tenant bench needs >= 3 tenants "
            f"(>= 2 seed-slot tenants to stack), got {tenants}"
        )
    sizes = _SERVE_SCALES[scale]
    mix = _MULTI_TENANT_SCALES[scale]
    rounds, per_tenant = mix["rounds"], mix["per_tenant"]
    static, metas = _multi_tenant_models(tenants)
    names = ["static"] + [f"meta_{index}" for index in range(len(metas))]
    sources = dict(zip(names, [static, *metas]))

    data_rng = np.random.default_rng(8)
    images = {
        name: data_rng.normal(
            size=(rounds * per_tenant, 3, sizes["image"], sizes["image"])
        ).astype(np.float32)
        for name in names
    }

    # Per-tenant single-engine references (also merges the static LoRA).
    # Two chunkings, because the meta mapping net is *not* batch-composition
    # invariant (that's why grouped dispatch runs it per-tenant): the serial
    # path serves one row at a time, the grouped path ``per_tenant`` rows.
    reference_serial, reference_grouped = {}, {}
    for name in names:
        with build_engine(sources[name], cache_size=0) as single:
            reference_serial[name] = _embed_chunked(single, images[name], 1)
            reference_grouped[name] = _embed_chunked(single, images[name], per_tenant)

    engine = MultiTenantEngine(cache_size=0)
    try:
        for name in names:
            engine.register(name, sources[name])
        meta_entries = [engine.registry.get(name) for name in names[1:]]
        if any(entry.body is not meta_entries[0].body for entry in meta_entries):
            raise ValueError(
                "multi-tenant bench: seed-slot tenants failed to share a body "
                "program; cross-tenant stacking would be meaningless"
            )

        round_batches = [
            [
                (name, images[name][round_index * per_tenant + offset])
                for name in names
                for offset in range(per_tenant)
            ]
            for round_index in range(rounds)
        ]
        requests = sum(len(batch) for batch in round_batches)

        def check_rows(
            rows_by_round: list[list[np.ndarray]],
            reference: dict[str, np.ndarray],
            label: str,
        ) -> None:
            for round_index, rows in enumerate(rows_by_round):
                for position, ((name, __), row) in enumerate(
                    zip(round_batches[round_index], rows)
                ):
                    offset = position % per_tenant
                    expected = reference[name][round_index * per_tenant + offset]
                    if not np.array_equal(row, expected):
                        raise ValueError(
                            f"multi-tenant bench: {label} row for tenant "
                            f"{name!r} diverged from its single-tenant engine"
                        )

        def serve_serial() -> list[list[np.ndarray]]:
            return [
                [serve_pairs(engine, [pair])[0] for pair in batch]
                for batch in round_batches
            ]

        def serve_grouped() -> list[list[np.ndarray]]:
            return [serve_pairs(engine, batch) for batch in round_batches]

        check_rows(serve_serial(), reference_serial, "serial")
        check_rows(serve_grouped(), reference_grouped, "grouped")

        serial_seconds, __ = time_calls(serve_serial, repeats=repeats)
        grouped_seconds, __ = time_calls(serve_grouped, repeats=repeats)

        # Seed-slot tenants only: the stacking claim in isolation.
        seed_batches = [
            [pair for pair in batch if pair[0] != "static"]
            for batch in round_batches
        ]
        seed_serial_seconds, __ = time_calls(
            lambda: [
                [serve_pairs(engine, [pair]) for pair in batch]
                for batch in seed_batches
            ],
            repeats=repeats,
        )
        seed_grouped_seconds, __ = time_calls(
            lambda: [serve_pairs(engine, batch) for batch in seed_batches],
            repeats=repeats,
        )

        # Churn: hot-swap the last seed-slot tenant with freshly perturbed
        # mapping weights; the swapped tenant must serve new rows.
        swapped = names[-1]
        probe = images[swapped][0]
        before = serve_pairs(engine, [(swapped, probe)])[0]
        for swap_index in range(swaps):
            __, fresh_metas = _multi_tenant_models(tenants)
            donor = fresh_metas[-1]
            churn_rng = np.random.default_rng(100 + swap_index)
            donor.trunk.weight.data[...] += (
                churn_rng.normal(size=donor.trunk.weight.data.shape) * 0.05
            )
            engine.swap(swapped, donor)
        if swaps:
            after = serve_pairs(engine, [(swapped, probe)])[0]
            if np.array_equal(before, after):
                raise ValueError(
                    f"multi-tenant bench: hot-swapping {swapped!r} did not "
                    f"change its served output"
                )

        cache_stats = engine.registry.stats()

        def cache_calls(name: str) -> int:
            return int(cache_stats.get(name, {}).get("calls", 0))

        hit = cache_calls("serve.program_cache.hit")
        miss = cache_calls("serve.program_cache.miss")
        evict = cache_calls("serve.program_cache.evict")
    finally:
        engine.close()

    return {
        "tenants": tenants,
        "seed_slot_tenants": len(metas),
        "static_tenants": 1,
        "rounds": rounds,
        "per_tenant": per_tenant,
        "requests": requests,
        "swaps": swaps,
        "serial_seconds": float(serial_seconds),
        "grouped_seconds": float(grouped_seconds),
        "speedup": float(serial_seconds / max(grouped_seconds, 1e-12)),
        "seed_slot": {
            "serial_seconds": float(seed_serial_seconds),
            "grouped_seconds": float(seed_grouped_seconds),
            "speedup": float(seed_serial_seconds / max(seed_grouped_seconds, 1e-12)),
        },
        "throughput": {
            "serial": float(requests / max(serial_seconds, 1e-12)),
            "grouped": float(requests / max(grouped_seconds, 1e-12)),
        },
        "program_cache": {
            "hit": hit,
            "miss": miss,
            "evict": evict,
            "hit_rate": float(hit / max(hit + miss, 1)),
        },
        "bit_identical": True,
    }


#: precision-tier accuracy budgets: largest allowed Table-I-style KNN
#: accuracy drop vs the f64 embeddings on the same support/query split.
PRECISION_ACCURACY_BUDGETS = {"f32": 0.02, "int8": 0.05}

#: KNN split sizes for the precision accuracy check per scale.
_PRECISION_KNN_SCALES = {
    "tiny": {"support": 24, "query": 24, "classes": 3, "k": 3},
    "small": {"support": 48, "query": 48, "classes": 4, "k": 5},
}

#: workload sizes for the precision matrix, per scale and backbone.  These
#: are deliberately larger than the serve-suite sizes: the tiers compare
#: kernel arithmetic, so the workload must be BLAS-bound, not
#: dispatch-bound, for the rows to mean anything.  The mixer's patchify
#: grid is baked for the paper's 16x16 images, so it scales by batch only.
_PRECISION_WORKLOADS = {
    "tiny": {
        "resnet": {"image": 32, "batch": 64, "samples": 64},
        "mixer": {"image": 16, "batch": 64, "samples": 64},
    },
    "small": {
        "resnet": {"image": 32, "batch": 64, "samples": 128},
        "mixer": {"image": 16, "batch": 64, "samples": 128},
    },
}


def _knn_accuracy(
    support: np.ndarray,
    support_labels: np.ndarray,
    query: np.ndarray,
    query_labels: np.ndarray,
    k: int,
) -> float:
    from repro.eval.knn import KNNClassifier

    knn = KNNClassifier(metric="cosine").fit(support, support_labels)
    return float(np.mean(knn.predict(query, k) == query_labels))


def run_precision_bench(
    scale: str = "tiny", repeats: int = 3, parallel: int | None = None
) -> dict:
    """The precision × fusion × parallelism matrix over both backbones.

    Every row times the *compiled program itself* (chunked ``run`` calls,
    no engine queueing) on the same sample set, against a baseline row
    compiled exactly like the pre-optimizer serving stack: f64, fusion
    off, arena off, serial — the configuration the committed BENCH_serve
    record was produced with.  Checks asserted in-process, so a record
    can only exist if they passed:

    - both f64 rows are bit-identical to ``extract_embeddings``;
    - per tier, Table-I-style KNN accuracy (cosine, fresh synthetic
      support/query split) drops no more than
      :data:`PRECISION_ACCURACY_BUDGETS` allows vs the f64 embeddings;
    - the parallel row matches the serial run of the same tier exactly.
    """
    from repro.data.synthetic import generate_task_data
    from repro.data.tasks import TaskDistribution
    from repro.eval.embeddings import extract_embeddings
    from repro.models import mixer_small, resnet_small
    from repro.serve import compile_features
    from repro.utils.rng import new_rng

    knn_sizes = _PRECISION_KNN_SCALES[scale]
    workloads = _PRECISION_WORKLOADS[scale]
    workers = int(parallel) if parallel else min(4, os.cpu_count() or 1)
    workers = max(workers, 2)

    #: (label, precision, fuse, parallel, arena)
    configs = [
        ("f64", "f64", False, 1, False),
        ("f64+fuse", "f64", True, 1, True),
        ("f32+fuse", "f32", True, 1, True),
        (f"f32+fuse+par{workers}", "f32", True, workers, True),
        ("int8+fuse", "int8", True, 1, True),
    ]

    backbones = []
    best_speedup = 0.0
    for name, model in (
        ("resnet", resnet_small(4, new_rng(0))),
        ("mixer", mixer_small(4, new_rng(1))),
    ):
        workload = workloads[name]
        samples, batch, image = workload["samples"], workload["batch"], workload["image"]
        data_rng = np.random.default_rng(11)
        images = data_rng.normal(size=(samples, 3, image, image)).astype(np.float32)
        tasks = TaskDistribution(2, image_size=image, seed=12, noise_level=0.1)
        knn_rng = np.random.default_rng(13)
        support_data = generate_task_data(
            tasks[1], knn_sizes["support"], knn_sizes["classes"], image, knn_rng
        )
        query_data = generate_task_data(
            tasks[1], knn_sizes["query"], knn_sizes["classes"], image, knn_rng
        )
        reference = extract_embeddings(model, images, batch_size=batch)

        def run_chunked(program) -> np.ndarray:
            chunks = [
                program.run(images[start : start + batch])
                for start in range(0, samples, batch)
            ]
            return np.concatenate(chunks, axis=0)

        def embed_knn(program, data) -> np.ndarray:
            chunks = [
                program.run(data.images[start : start + batch])
                for start in range(0, data.images.shape[0], batch)
            ]
            return np.concatenate(chunks, axis=0)

        accuracy: dict[str, float] = {}
        rows = []
        baseline_seconds = None
        serial_outputs: dict[str, np.ndarray] = {}
        for label, precision, fuse, row_workers, arena in configs:
            program = compile_features(
                model, precision=precision, fuse=fuse, parallel=row_workers
            )
            program.arena = arena  # explicit: rows must not depend on env knobs
            # The parallel row measures the thread scheduler itself, so
            # the serial-seconds cost gate is pinned off per row too.
            program.parallel_threshold = 0.0
            out = run_chunked(program)
            err = float(np.max(np.abs(out - reference)))
            if precision == "f64" and not np.array_equal(out, reference):
                raise ValueError(
                    f"precision bench: f64 row {label!r} on {name!r} is not "
                    f"bit-identical to extract_embeddings (max err {err})"
                )
            if row_workers > 1:
                serial = serial_outputs.get(precision)
                if serial is not None and not np.array_equal(out, serial):
                    raise ValueError(
                        f"precision bench: parallel row {label!r} on {name!r} "
                        f"diverged from the serial {precision} run"
                    )
            else:
                serial_outputs[precision] = out
            if precision not in accuracy:
                tier_support = embed_knn(program, support_data)
                tier_query = embed_knn(program, query_data)
                accuracy[precision] = _knn_accuracy(
                    tier_support,
                    support_data.labels,
                    tier_query,
                    query_data.labels,
                    knn_sizes["k"],
                )

            seconds, __ = time_calls(lambda: run_chunked(program), repeats=repeats)
            __, latencies = _time_per_sample(
                lambda i: program.run(images[i : i + 1]), samples, 1
            )
            if baseline_seconds is None:
                baseline_seconds = seconds
            counters = program.counters()
            hits, allocs = counters["arena_hits"], counters["arena_allocs"]
            speedup = float(baseline_seconds / max(seconds, 1e-12))
            rows.append(
                {
                    "label": label,
                    "precision": precision,
                    "fusion": bool(fuse),
                    "parallel": int(row_workers),
                    "arena": bool(arena),
                    "seconds": float(seconds),
                    "throughput": float(samples / max(seconds, 1e-12)),
                    "latency_ms": {
                        "p50": _percentile_ms(latencies, 50),
                        "p99": _percentile_ms(latencies, 99),
                    },
                    "max_abs_err_vs_f64": err,
                    "speedup_vs_f64": speedup,
                    "fusion_steps_eliminated": int(counters["fusion_eliminated"]),
                    "quantized_weights": int(counters["quantized"]),
                    "arena_stats": {
                        "hits": int(hits),
                        "allocs": int(allocs),
                        "reuse_rate": float(hits / max(hits + allocs, 1)),
                    },
                }
            )
            if precision == "f32" and fuse:
                best_speedup = max(best_speedup, speedup)

        drops = {
            tier: max(0.0, accuracy["f64"] - accuracy[tier])
            for tier in accuracy
            if tier != "f64"
        }
        for tier, drop in drops.items():
            budget = PRECISION_ACCURACY_BUDGETS[tier]
            if drop > budget:
                raise ValueError(
                    f"precision bench: {tier} KNN accuracy on {name!r} dropped "
                    f"{drop:.3f} vs f64 (budget {budget})"
                )
        backbones.append(
            {
                "name": name,
                "samples": int(samples),
                "batch_size": int(batch),
                "f64_bit_identical": True,
                "knn": {
                    "support": int(knn_sizes["support"]),
                    "query": int(knn_sizes["query"]),
                    "k": int(knn_sizes["k"]),
                    "accuracy": {tier: float(acc) for tier, acc in accuracy.items()},
                    "max_drop": {tier: float(drop) for tier, drop in drops.items()},
                },
                "rows": rows,
            }
        )

    return {
        "parallel_workers": int(workers),
        "budgets": dict(PRECISION_ACCURACY_BUDGETS),
        "backbones": backbones,
        "best_speedup_vs_f64": float(best_speedup),
    }


def run_serve_bench(scale: str = "tiny", repeats: int = 3, tenants: int = 4) -> dict:
    """Naive / batched-autograd / compiled-engine serving comparison.

    Unlike :func:`_measure`, every path here runs under the *same*
    (default) perf flags: the serving claim is that the compiled engine is
    bit-identical to the reference ``extract_embeddings`` under identical
    flags — that check is asserted in-process, so a record with a nonzero
    ``max_abs_diff`` cannot be produced.

    ``tenants >= 3`` additionally runs :func:`run_multi_tenant_bench` and
    attaches its result as the record's ``multi_tenant`` section
    (``tenants=0`` disables it).  The record always carries a
    ``precision`` section from :func:`run_precision_bench` — the
    precision × fusion × parallelism matrix.  The baseline entries pin
    ``precision="f64"`` explicitly so their bit-exactness contract holds
    regardless of ``REPRO_SERVE_PRECISION``.
    """
    from repro.eval.embeddings import extract_embeddings
    from repro.serve import build_engine

    sizes = _SERVE_SCALES[scale]
    data_rng = np.random.default_rng(7)
    images = data_rng.normal(
        size=(sizes["samples"], 3, sizes["image"], sizes["image"])
    ).astype(np.float32)
    samples, batch = images.shape[0], sizes["batch"]

    entries = []
    for name, model in _serve_models():
        engine = build_engine(model, cache_size=0, precision="f64")
        reference = extract_embeddings(model, images, batch_size=batch)

        _clear_caches()
        OBS.reset()
        OBS.enable()
        try:
            compiled = _embed_chunked(engine, images, batch)
        finally:
            OBS.disable()
        counters = OBS.as_dict()
        diff = float(np.max(np.abs(reference - compiled)))
        if diff != 0.0:
            raise ValueError(
                f"serve bench: compiled embeddings for {name!r} diverged from "
                f"extract_embeddings (max_abs_diff={diff})"
            )

        naive_seconds, naive_latencies = _time_per_sample(
            lambda i: extract_embeddings(model, images[i : i + 1], batch_size=1),
            samples,
            repeats,
        )
        compiled_single_seconds, compiled_latencies = _time_per_sample(
            lambda i: _embed_chunked(engine, images[i : i + 1], 1), samples, repeats
        )
        batched_seconds, __ = time_calls(
            lambda: extract_embeddings(model, images, batch_size=batch), repeats=repeats
        )
        compiled_seconds, __ = time_calls(
            lambda: _embed_chunked(engine, images, batch), repeats=repeats
        )
        engine.close()

        entries.append(
            {
                "name": f"serve.{name}",
                "reference_seconds": float(naive_seconds),
                "optimized_seconds": float(compiled_seconds),
                "speedup": float(naive_seconds / max(compiled_seconds, 1e-12)),
                "max_abs_diff": diff,
                "samples": samples,
                "batch_size": batch,
                "batched_autograd_seconds": float(batched_seconds),
                "throughput": {
                    "naive_per_sample": float(samples / max(naive_seconds, 1e-12)),
                    "batched_autograd": float(samples / max(batched_seconds, 1e-12)),
                    "compiled": float(samples / max(compiled_seconds, 1e-12)),
                },
                "latency_ms": {
                    "naive_p50": _percentile_ms(naive_latencies, 50),
                    "naive_p99": _percentile_ms(naive_latencies, 99),
                    "compiled_p50": _percentile_ms(compiled_latencies, 50),
                    "compiled_p99": _percentile_ms(compiled_latencies, 99),
                },
                "counters": counters,
            }
        )
    record = _finish_record("serve", scale, repeats, entries)
    record["precision"] = run_precision_bench(scale=scale, repeats=repeats)
    validate_bench_record(record)
    if tenants:
        record["multi_tenant"] = run_multi_tenant_bench(
            scale=scale, repeats=repeats, tenants=tenants
        )
        validate_bench_record(record)
    return record


def _percentiles_ms(latencies_ms: list[float]) -> dict[str, float]:
    values = np.asarray(latencies_ms, dtype=float)
    return {
        "p50": float(np.percentile(values, 50)),
        "p99": float(np.percentile(values, 99)),
        "p999": float(np.percentile(values, 99.9)),
    }


def _counter_delta(before: dict, after: dict, name: str) -> int:
    return int(
        (after.get(name) or {}).get("calls", 0)
        - (before.get(name) or {}).get("calls", 0)
    )


def _bucket_delta(before: dict, after: dict, name: str) -> dict[str, int]:
    old = (before.get(name) or {}).get("buckets") or {}
    new = (after.get(name) or {}).get("buckets") or {}
    delta = {
        bucket: int(count) - int(old.get(bucket, 0)) for bucket, count in new.items()
    }
    return {bucket: count for bucket, count in delta.items() if count > 0}


def run_load_bench(
    scale: str = "tiny",
    repeats: int = 1,
    tenants: int = 3,
    duration: float = 1.0,
    load_factors: tuple[float, ...] = (0.25, 0.75, 1.5),
    deadline: float = 0.5,
    queue_limit: int = 64,
    seed: int = 0,
    shards: int = 4,
) -> dict:
    """End-to-end load test of the asyncio serving frontend.

    Starts a real :class:`~repro.serve.frontend.ServingFrontend` (TCP,
    continuous batching) over a multi-tenant engine, estimates the
    server's single-stream capacity, then offers ``load_factors`` ×
    capacity of open-loop Poisson traffic (``duration`` seconds per
    level) through :func:`repro.serve.loadgen.run_load` — the
    throughput-vs-offered-load curve, with client-side p50/p99/p999
    latency and the server's queue-depth / batch-size histograms per
    level.

    With ``shards >= 2`` the record also carries a ``scaling`` section:
    the same tenants served by a
    :class:`~repro.serve.shard.ShardedEngine` at each power-of-two
    shard count up to ``shards``, with per-shard isolated capacity
    probes (their sum is the fleet-sizing ``capacity_estimate_rps`` —
    ``host_cpus`` is recorded so single-core hosts read honestly), an
    offered-load curve through the sharded frontend, and a per-shard
    recorded-batch replay asserting server-vs-direct bit-identity.

    Bit-identity is asserted in-process: the scheduler records its first
    dispatched micro-batches, and each fully-``ok`` recorded batch is
    replayed through ``engine.serve`` directly — the server's rows must
    match the direct dispatch *exactly* (the mapping net is batch-
    composition sensitive, so identity is contracted per dispatched
    batch, not per isolated request).  A record with ``bit_identical:
    false`` cannot be produced.  ``repeats`` is accepted for suite-
    runner symmetry (arrival schedules are seeded, not repeated).
    """
    from repro.serve import MultiTenantEngine, ServeRequest, ServingFrontend
    from repro.serve.loadgen import run_load

    if len(load_factors) < 3:
        raise ValueError(
            f"load bench needs >= 3 offered-load levels, got {load_factors}"
        )
    if sorted(load_factors) != list(load_factors):
        raise ValueError(f"load factors must be increasing, got {load_factors}")
    sizes = _SERVE_SCALES[scale]
    static, metas = _multi_tenant_models(tenants)
    names = ["static"] + [f"meta_{index}" for index in range(len(metas))]

    data_rng = np.random.default_rng(seed + 70)
    pools = {
        name: data_rng.normal(
            size=(16, 3, sizes["image"], sizes["image"])
        ).astype(np.float32)
        for name in names
    }

    engine = MultiTenantEngine(cache_size=0)
    frontend = None
    try:
        for name, source in zip(names, [static, *metas]):
            engine.register(name, source)

        # Warm the compiled programs, then estimate single-stream capacity
        # from a timed mixed batch — load levels scale off the measurement,
        # so the curve brackets saturation on fast and slow hosts alike.
        probe = [
            ServeRequest(sample=pools[name][index], adapter=name)
            for index in range(4)
            for name in names
        ]
        for result in engine.serve(probe):
            result.require()
        start = time.perf_counter()
        for result in engine.serve(probe):
            result.require()
        per_sample = (time.perf_counter() - start) / len(probe)
        capacity = 1.0 / max(per_sample, 1e-6)

        frontend = ServingFrontend(
            engine,
            queue_limit=queue_limit,
            record_batches=8,
            target_batch_seconds=0.05,
        )
        host, port = frontend.start_in_thread()

        levels = []
        for index, factor in enumerate(load_factors):
            rate = max(5.0, capacity * factor)
            before = frontend.scheduler.stats()
            report = run_load(
                host,
                port,
                pools,
                adapters=names,
                rate=rate,
                duration=duration,
                deadline=deadline,
                seed=seed + index,
            )
            after = frontend.scheduler.stats()
            statuses = report["statuses"]
            if not report["latencies_ms"]:
                raise ValueError(
                    f"load bench: level {factor}x ({rate:.0f}/s) completed no "
                    f"requests; statuses: {statuses}"
                )
            levels.append(
                {
                    "load_factor": float(factor),
                    "offered_rate": float(report["offered_rate"]),
                    "duration_seconds": float(report["duration_seconds"]),
                    "sent": int(report["sent"]),
                    "completed": int(report["completed"]),
                    "ok": int(statuses.get("ok", 0)),
                    "rejected": int(statuses.get("rejected", 0)),
                    "deadline_missed": int(statuses.get("deadline_missed", 0)),
                    "achieved_rate": float(report["achieved_rate"]),
                    "max_lateness_seconds": float(report["max_lateness_seconds"]),
                    "latency_ms": _percentiles_ms(report["latencies_ms"]),
                    "queue_depth": _bucket_delta(before, after, "serve.queue.depth"),
                    "batch_size": _bucket_delta(before, after, "serve.batch.size"),
                    "counters": {
                        "serve.request.rejected": _counter_delta(
                            before, after, "serve.request.rejected"
                        ),
                        "serve.request.deadline_missed": _counter_delta(
                            before, after, "serve.request.deadline_missed"
                        ),
                    },
                }
            )

        recorded = list(frontend.scheduler.recorded)
        frontend.stop_in_thread()
        frontend = None

        # Replay every fully-ok recorded micro-batch through the engine
        # directly; the server's rows must match exactly.
        replayed = 0
        for requests, results in recorded:
            if not all(result.ok for result in results):
                continue
            replay = engine.serve(
                [
                    ServeRequest(sample=request.sample, adapter=request.adapter)
                    for request in requests
                ]
            )
            for served, direct in zip(results, replay):
                if not np.array_equal(served.embedding, direct.require()):
                    raise ValueError(
                        "load bench: served batch diverged from direct "
                        "engine dispatch of the same micro-batch"
                    )
            replayed += 1
        if replayed < 1:
            raise ValueError(
                "load bench: no fully-served micro-batch was recorded; "
                "cannot assert server-vs-direct bit-identity"
            )
    finally:
        if frontend is not None:
            frontend.stop_in_thread()
        engine.close()

    scaling = None
    if shards >= 2:
        scaling = _run_scaling_sweep(
            [static, *metas],
            names,
            pools,
            duration=duration,
            deadline=deadline,
            queue_limit=queue_limit,
            seed=seed,
            shard_counts=_shard_counts(shards),
            load_factors=tuple(load_factors)[:2],
        )

    record = {
        "schema": SCHEMA,
        "kind": "load",
        "scale": scale,
        "repeats": int(repeats),
        "tenants": int(tenants),
        "capacity_estimate_rps": float(capacity),
        "server": {
            "queue_limit": int(queue_limit),
            "max_batch": int(engine.max_batch),
            "target_batch_seconds": 0.05,
            "deadline_seconds": float(deadline),
        },
        "load": {"levels": levels},
        "bit_identical": True,
        "replayed_batches": int(replayed),
        "summary": {
            "peak_achieved_rate": float(
                max(level["achieved_rate"] for level in levels)
            ),
            "levels": len(levels),
        },
    }
    if scaling is not None:
        record["scaling"] = scaling
    validate_bench_record(record)
    return record


def _shard_counts(shards: int) -> list[int]:
    """Power-of-two shard counts up to ``shards`` (4 -> [1, 2, 4])."""
    counts = []
    count = 1
    while count <= shards:
        counts.append(count)
        count *= 2
    return counts


def _run_scaling_sweep(
    models: list,
    names: list[str],
    pools: dict,
    *,
    duration: float,
    deadline: float,
    queue_limit: int,
    seed: int,
    shard_counts: list[int],
    load_factors: tuple[float, ...],
) -> dict:
    """The ``scaling`` section: the load tenants on 1/2/.../N shards.

    For each shard count: register every tenant on a
    :class:`~repro.serve.shard.ShardedEngine`, probe each shard's
    capacity in isolation (the sum is the fleet-sizing estimate — on a
    single-core host the shards time-slice, which is why ``host_cpus``
    is part of the record), drive the offered-load curve through the
    real sharded frontend, then pull every shard's recorded
    micro-batches and replay them through a direct single-process
    engine — each shard must serve bit-identically to direct dispatch,
    so a section with ``bit_identical: false`` cannot be produced.
    """
    from repro.runtime.pool import resolve_start_method
    from repro.serve import (
        MultiTenantEngine,
        ServeRequest,
        ServingFrontend,
        ShardedEngine,
    )
    from repro.serve.loadgen import run_load

    def tenant_builder_args(name: str) -> tuple[str, int]:
        if name == "static":
            return ("static", 0)
        return ("meta", int(name.rsplit("_", 1)[1]))

    reference = MultiTenantEngine(cache_size=0)
    entries = []
    try:
        for name, model in zip(names, models):
            reference.register(name, model)
        for count in shard_counts:
            sharded = ShardedEngine(
                count,
                queue_limit=queue_limit,
                record_batches=4,
                target_batch_seconds=0.05,
            )
            frontend = None
            try:
                for name, model in zip(names, models):
                    kind, index = tenant_builder_args(name)
                    sharded.register(
                        name, model, builder=build_shard_tenant, args=(kind, index)
                    )

                def probe_requests() -> list:
                    return [
                        ServeRequest(sample=pools[name][index], adapter=name)
                        for index in range(4)
                        for name in names
                    ]

                per_shard = []
                for shard_id in range(count):
                    for result in sharded.serve_on(shard_id, probe_requests()):
                        result.require()  # warm the shard's compiled programs
                    start = time.perf_counter()
                    served = sharded.serve_on(shard_id, probe_requests())
                    elapsed = time.perf_counter() - start
                    for result in served:
                        result.require()
                    per_shard.append(len(served) / max(elapsed, 1e-6))

                frontend = ServingFrontend(scheduler=sharded)
                host, port = frontend.start_in_thread()
                base_rate = entries[0]["capacity_estimate_rps"] if entries else sum(per_shard)
                levels = []
                for index, factor in enumerate(load_factors):
                    rate = max(5.0, base_rate * factor)
                    report = run_load(
                        host,
                        port,
                        pools,
                        adapters=names,
                        rate=rate,
                        duration=duration,
                        deadline=deadline,
                        seed=seed + 100 * count + index,
                    )
                    statuses = report["statuses"]
                    levels.append(
                        {
                            "load_factor": float(factor),
                            "offered_rate": float(report["offered_rate"]),
                            "achieved_rate": float(report["achieved_rate"]),
                            "sent": int(report["sent"]),
                            "completed": int(report["completed"]),
                            "ok": int(statuses.get("ok", 0)),
                            "rejected": int(statuses.get("rejected", 0)),
                            "deadline_missed": int(
                                statuses.get("deadline_missed", 0)
                            ),
                        }
                    )

                recorded = sharded.recorded_batches()
                replayed = 0
                for batches in recorded.values():
                    for batch in batches:
                        if not all(status == "ok" for status in batch["statuses"]):
                            continue
                        replay = reference.serve(
                            [
                                ServeRequest(sample=sample, adapter=adapter)
                                for sample, adapter in zip(
                                    batch["samples"], batch["adapters"]
                                )
                            ]
                        )
                        for embedding, direct in zip(batch["embeddings"], replay):
                            if not np.array_equal(embedding, direct.require()):
                                raise ValueError(
                                    f"scaling sweep: a {count}-shard recorded "
                                    f"batch diverged from direct dispatch"
                                )
                        replayed += 1
                if replayed < 1:
                    raise ValueError(
                        f"scaling sweep: no fully-served batch recorded at "
                        f"{count} shard(s); cannot assert bit-identity"
                    )
                entries.append(
                    {
                        "shards": int(count),
                        "capacity_estimate_rps": float(sum(per_shard)),
                        "per_shard_capacity_rps": [
                            float(value) for value in per_shard
                        ],
                        "levels": levels,
                        "bit_identical": True,
                        "replayed_batches": int(replayed),
                    }
                )
            finally:
                if frontend is not None:
                    frontend.stop_in_thread()  # drains + closes the ShardedEngine
                else:
                    sharded.close()
    finally:
        reference.close()

    base = entries[0]["capacity_estimate_rps"]
    top = entries[-1]
    return {
        "host_cpus": int(os.cpu_count() or 1),
        "start_method": resolve_start_method(),
        "shard_counts": [int(count) for count in shard_counts],
        "entries": entries,
        "summary": {
            "capacity_ratio": float(top["capacity_estimate_rps"] / base),
            "top_shards": int(top["shards"]),
        },
    }


# -- record assembly / validation / io ----------------------------------------


def _finish_record(kind: str, scale: str, repeats: int, entries: list[dict]) -> dict:
    speedups = [e["speedup"] for e in entries]
    record = {
        "schema": SCHEMA,
        "kind": kind,
        "scale": scale,
        "repeats": repeats,
        "entries": entries,
        "summary": {
            "min_speedup": float(min(speedups)),
            "geomean_speedup": float(np.exp(np.mean(np.log(speedups)))),
        },
    }
    validate_bench_record(record)
    return record


def _validate_load_record(record: dict, expect: Callable[[bool, str], None]) -> None:
    """The ``kind == "load"`` branch of :func:`validate_bench_record`."""
    expect(isinstance(record.get("tenants"), int) and record["tenants"] >= 1,
           "tenants must be a positive int")
    value = record.get("capacity_estimate_rps")
    expect(isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
           "capacity_estimate_rps must be a finite float > 0")
    server = record.get("server")
    expect(isinstance(server, dict), "server must be a dict")
    for key in ("queue_limit", "max_batch"):
        expect(isinstance(server.get(key), int) and server[key] >= 1,
               f"server.{key} must be a positive int")
    for key in ("target_batch_seconds", "deadline_seconds"):
        value = server.get(key)
        expect(isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
               f"server.{key} must be a finite float > 0")
    load = record.get("load")
    expect(isinstance(load, dict), "load must be a dict")
    levels = load.get("levels")
    expect(isinstance(levels, list) and len(levels) >= 3,
           "load.levels must list >= 3 offered-load levels")
    previous = 0.0
    for level in levels:
        rate = level.get("offered_rate")
        expect(
            isinstance(rate, (int, float)) and np.isfinite(rate) and rate > previous,
            "load.levels must carry strictly increasing finite offered_rate values",
        )
        previous = float(rate)
        for key in ("duration_seconds", "achieved_rate"):
            value = level.get(key)
            expect(isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
                   f"load level {rate}: {key} must be a finite float > 0")
        for key in ("sent", "completed", "ok", "rejected", "deadline_missed"):
            value = level.get(key)
            expect(isinstance(value, int) and value >= 0,
                   f"load level {rate}: {key} must be an int >= 0")
        expect(level.get("sent", 0) >= 1, f"load level {rate}: sent must be >= 1")
        latency = level.get("latency_ms")
        expect(isinstance(latency, dict), f"load level {rate}: latency_ms must be a dict")
        for key in ("p50", "p99", "p999"):
            value = latency.get(key)
            expect(isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
                   f"load level {rate}: latency_ms.{key} must be a finite float > 0")
        expect(latency["p50"] <= latency["p99"] <= latency["p999"],
               f"load level {rate}: latency percentiles must be non-decreasing")
        for key in ("queue_depth", "batch_size"):
            buckets = level.get(key)
            expect(
                isinstance(buckets, dict) and buckets
                and all(isinstance(count, int) and count >= 1
                        for count in buckets.values()),
                f"load level {rate}: {key} must be a non-empty bucket histogram",
            )
        counters = level.get("counters")
        expect(
            isinstance(counters, dict)
            and {"serve.request.rejected", "serve.request.deadline_missed"}
            <= set(counters),
            f"load level {rate}: counters must carry the serve.request.* series",
        )
    expect(record.get("bit_identical") is True,
           "bit_identical must be True (server-vs-direct identity is asserted "
           "in-process)")
    expect(isinstance(record.get("replayed_batches"), int)
           and record["replayed_batches"] >= 1,
           "replayed_batches must be an int >= 1")
    summary = record.get("summary")
    expect(isinstance(summary, dict), "summary must be a dict")
    value = summary.get("peak_achieved_rate")
    expect(isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
           "summary.peak_achieved_rate must be a finite float > 0")
    if "scaling" in record:
        _validate_scaling_section(record["scaling"], expect)


def _validate_scaling_section(
    scaling: dict, expect: Callable[[bool, str], None]
) -> None:
    """The optional ``scaling`` section of a ``load`` record."""
    expect(isinstance(scaling, dict), "scaling must be a dict")
    expect(isinstance(scaling.get("host_cpus"), int) and scaling["host_cpus"] >= 1,
           "scaling.host_cpus must be a positive int")
    expect(scaling.get("start_method") in ("fork", "spawn", "forkserver"),
           "scaling.start_method must be a multiprocessing start method")
    counts = scaling.get("shard_counts")
    expect(
        isinstance(counts, list) and len(counts) >= 2 and counts[0] == 1
        and all(isinstance(count, int) for count in counts)
        and counts == sorted(set(counts)),
        "scaling.shard_counts must be strictly increasing ints starting at 1",
    )
    entries = scaling.get("entries")
    expect(isinstance(entries, list) and len(entries) == len(counts),
           "scaling.entries must carry one entry per shard count")
    for count, entry in zip(counts, entries):
        expect(isinstance(entry, dict) and entry.get("shards") == count,
               f"scaling entry for {count} shard(s) is missing or misordered")
        value = entry.get("capacity_estimate_rps")
        expect(isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
               f"scaling[{count}]: capacity_estimate_rps must be a finite float > 0")
        per_shard = entry.get("per_shard_capacity_rps")
        expect(
            isinstance(per_shard, list) and len(per_shard) == count
            and all(isinstance(value, (int, float)) and np.isfinite(value)
                    and value > 0 for value in per_shard),
            f"scaling[{count}]: per_shard_capacity_rps must list {count} "
            f"finite floats > 0",
        )
        levels = entry.get("levels")
        expect(isinstance(levels, list) and len(levels) >= 1,
               f"scaling[{count}]: levels must list >= 1 offered-load levels")
        previous = 0.0
        for level in levels:
            rate = level.get("offered_rate")
            expect(
                isinstance(rate, (int, float)) and np.isfinite(rate)
                and rate > previous,
                f"scaling[{count}]: offered_rate values must strictly increase",
            )
            previous = float(rate)
            value = level.get("achieved_rate")
            expect(isinstance(value, (int, float)) and np.isfinite(value)
                   and value > 0,
                   f"scaling[{count}]: achieved_rate must be a finite float > 0")
            for key in ("sent", "completed", "ok", "rejected", "deadline_missed"):
                value = level.get(key)
                expect(isinstance(value, int) and value >= 0,
                       f"scaling[{count}]: {key} must be an int >= 0")
        expect(entry.get("bit_identical") is True,
               f"scaling[{count}]: bit_identical must be True (per-shard replay "
               f"is asserted in-process)")
        expect(isinstance(entry.get("replayed_batches"), int)
               and entry["replayed_batches"] >= 1,
               f"scaling[{count}]: replayed_batches must be an int >= 1")
    summary = scaling.get("summary")
    expect(isinstance(summary, dict), "scaling.summary must be a dict")
    expect(summary.get("top_shards") == counts[-1],
           "scaling.summary.top_shards must match the largest shard count")
    ratio = summary.get("capacity_ratio")
    expect(isinstance(ratio, (int, float)) and np.isfinite(ratio),
           "scaling.summary.capacity_ratio must be a finite float")
    expect(
        abs(ratio - entries[-1]["capacity_estimate_rps"]
            / entries[0]["capacity_estimate_rps"]) < 1e-9,
        "scaling.summary.capacity_ratio must equal top/base capacity",
    )
    # The headline contract is >= 1.7x at 4 shards.  A 2-shard smoke
    # sweep ideally doubles, but single-core probe jitter can eat most
    # of a shard's margin — hold it to a looser floor that still proves
    # the fleet scales at all.
    floor = 1.7 if counts[-1] >= 4 else 1.3
    expect(ratio >= floor,
           f"scaling.summary.capacity_ratio must be >= {floor} at "
           f"{counts[-1]} shards vs 1, got {ratio}")


def _validate_robustness_record(
    record: dict, expect: Callable[[bool, str], None]
) -> None:
    """The ``kind == "robustness"`` branch of :func:`validate_bench_record`."""

    def finite(value) -> bool:
        return isinstance(value, (int, float)) and np.isfinite(value)

    grid = record.get("grid")
    expect(isinstance(grid, dict), "grid must be a dict")
    seeds = grid.get("seeds")
    expect(isinstance(seeds, list) and seeds
           and all(isinstance(s, int) for s in seeds),
           "grid.seeds must be a non-empty list of ints")
    methods = grid.get("methods")
    expect(isinstance(methods, list) and len(methods) >= 2
           and all(isinstance(m, str) and m for m in methods),
           "grid.methods must list >= 2 methods")
    corruptions = grid.get("corruptions")
    expect(isinstance(corruptions, list) and corruptions
           and all(isinstance(c, str) and c for c in corruptions),
           "grid.corruptions must be a non-empty list of names")
    severities = grid.get("severities")
    expect(isinstance(severities, list) and len(severities) >= 2
           and all(isinstance(s, int) and 0 <= s <= 5 for s in severities)
           and len(set(severities)) == len(severities),
           "grid.severities must list >= 2 distinct severities in 0..5")
    expect(0 in (severities or []),
           "grid.severities must include 0 (the clean pin)")
    ks = grid.get("ks")
    expect(isinstance(ks, list) and ks and all(isinstance(k, int) and k >= 1 for k in ks),
           "grid.ks must be a non-empty list of positive ints")

    cells = record.get("cells")
    expect(isinstance(cells, list) and cells, "cells must be a non-empty list")
    wanted = {
        (seed, method, corruption, severity)
        for seed in seeds for method in methods
        for corruption in corruptions for severity in severities
    }
    seen = set()
    for cell in cells:
        expect(isinstance(cell, dict), "every cell must be a dict")
        key = (cell.get("seed"), cell.get("method"),
               cell.get("corruption"), cell.get("severity"))
        expect(key in wanted, f"cell {key} is outside the declared grid")
        expect(key not in seen, f"duplicate cell {key}")
        seen.add(key)
        accuracy = cell.get("accuracy_by_k")
        expect(isinstance(accuracy, dict) and accuracy,
               f"cell {key}: accuracy_by_k must be a non-empty dict")
        expect({int(k) for k in accuracy} == set(ks),
               f"cell {key}: accuracy_by_k must cover grid.ks exactly")
        for k, value in accuracy.items():
            expect(finite(value) and 0.0 <= value <= 1.0,
                   f"cell {key}: accuracy_by_k[{k}] must be a float in [0, 1]")
    expect(seen == wanted,
           f"cells must cover the full grid ({len(seen)}/{len(wanted)} present)")

    expect(record.get("severity0_bit_identical") is True,
           "severity0_bit_identical must be True (the clean Table I pin is "
           "asserted in-process)")
    parallel = record.get("parallel")
    expect(isinstance(parallel, dict), "parallel must be a dict")
    expect(isinstance(parallel.get("jobs"), int) and parallel["jobs"] >= 2,
           "parallel.jobs must be an int >= 2")
    expect(isinstance(parallel.get("host_cpus"), int) and parallel["host_cpus"] >= 1,
           "parallel.host_cpus must be a positive int")
    for key in ("serial_seconds", "parallel_seconds"):
        value = parallel.get(key)
        expect(finite(value) and value > 0,
               f"parallel.{key} must be a finite float > 0")
    expect(parallel.get("cells_equal") is True,
           "parallel.cells_equal must be True (equality is asserted in-process)")
    resume = record.get("resume")
    expect(isinstance(resume, dict), "resume must be a dict")
    for key in ("removed_cells", "restored_cells"):
        expect(isinstance(resume.get(key), int) and resume[key] >= 1,
               f"resume.{key} must be an int >= 1")
    expect(resume.get("cells_equal") is True,
           "resume.cells_equal must be True (equality is asserted in-process)")

    slopes = record.get("slopes")
    expect(isinstance(slopes, dict) and set(slopes) == set(methods),
           "slopes must carry one entry per method")
    for method, entry in slopes.items():
        expect(isinstance(entry, dict), f"slopes[{method}] must be a dict")
        per_corruption = entry.get("per_corruption")
        expect(isinstance(per_corruption, dict)
               and set(per_corruption) == set(corruptions),
               f"slopes[{method}].per_corruption must cover every corruption")
        for corruption, slope in per_corruption.items():
            expect(finite(slope),
                   f"slopes[{method}].per_corruption[{corruption}] must be finite")
        expect(finite(entry.get("mean")), f"slopes[{method}].mean must be finite")

    headline = record.get("headline")
    expect(isinstance(headline, dict), "headline must be a dict")
    expect(headline.get("baseline") in methods,
           "headline.baseline must be one of grid.methods")
    meta_methods = headline.get("meta_methods")
    expect(isinstance(meta_methods, list) and meta_methods
           and all(m in methods for m in meta_methods),
           "headline.meta_methods must be a non-empty subset of grid.methods")
    for key in ("corrupted_delta", "clean_delta"):
        expect(finite(headline.get(key)), f"headline.{key} must be finite")

    stream = record.get("stream")
    expect(isinstance(stream, dict), "stream must be a dict")
    expect(isinstance(stream.get("steps"), int) and stream["steps"] >= 2,
           "stream.steps must be an int >= 2")
    stream_methods = stream.get("methods")
    expect(isinstance(stream_methods, dict) and stream_methods,
           "stream.methods must be a non-empty dict")
    for method, entry in stream_methods.items():
        steps = entry.get("steps") if isinstance(entry, dict) else None
        expect(isinstance(steps, list) and len(steps) == stream["steps"],
               f"stream.methods[{method}].steps must list every step")
        for step in steps:
            expect(isinstance(step, dict)
                   and isinstance(step.get("corruption"), str)
                   and isinstance(step.get("severity"), int)
                   and 0 <= step["severity"] <= 5,
                   f"stream.methods[{method}]: every step needs "
                   f"corruption/severity")
            accuracy = step.get("accuracy")
            expect(finite(accuracy) and 0.0 <= accuracy <= 1.0,
                   f"stream.methods[{method}]: step accuracy must be in [0, 1]")
            latency = step.get("refit_latency_s")
            expect(finite(latency) and latency >= 0,
                   f"stream.methods[{method}]: refit_latency_s must be >= 0")
        expect(finite(entry.get("mean_accuracy")),
               f"stream.methods[{method}].mean_accuracy must be finite")
        expect(finite(entry.get("mean_refit_latency_s")),
               f"stream.methods[{method}].mean_refit_latency_s must be finite")

    summary = record.get("summary")
    expect(isinstance(summary, dict), "summary must be a dict")
    expect(summary.get("headline_delta") == headline.get("corrupted_delta"),
           "summary.headline_delta must equal headline.corrupted_delta")


def validate_bench_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the repro.bench/v1 schema."""

    def expect(condition: bool, message: str) -> None:
        if not condition:
            raise ValueError(f"invalid bench record: {message}")

    expect(isinstance(record, dict), "not a mapping")
    expect(record.get("schema") == SCHEMA, f"schema must be {SCHEMA!r}")
    expect(
        record.get("kind") in ("autograd", "table1", "serve", "load", "robustness"),
        "kind must be autograd|table1|serve|load|robustness",
    )
    expect(record.get("scale") in _SCALES, f"scale must be one of {sorted(_SCALES)}")
    expect(isinstance(record.get("repeats"), int) and record["repeats"] >= 1,
           "repeats must be a positive int")
    if record.get("kind") == "load":
        _validate_load_record(record, expect)
        return
    if record.get("kind") == "robustness":
        _validate_robustness_record(record, expect)
        return
    entries = record.get("entries")
    expect(isinstance(entries, list) and entries, "entries must be a non-empty list")
    for entry in entries:
        expect(isinstance(entry.get("name"), str) and entry["name"], "entry needs a name")
        for key in ("reference_seconds", "optimized_seconds", "speedup", "max_abs_diff"):
            value = entry.get(key)
            expect(isinstance(value, (int, float)) and np.isfinite(value) and value >= 0,
                   f"entry {entry.get('name')!r}: {key} must be a finite float >= 0")
        counters = entry.get("counters")
        expect(isinstance(counters, dict), f"entry {entry.get('name')!r}: counters must be a dict")
        for cname, stats in counters.items():
            expect(
                isinstance(stats, dict)
                and {"kind", "calls", "seconds", "bytes"} <= set(stats),
                f"counter {cname!r} must have kind/calls/seconds/bytes "
                f"(the unified metrics-snapshot schema)",
            )
            expect(
                stats.get("kind") in KINDS,
                f"counter {cname!r} kind must be one of {list(KINDS)}",
            )
        if record.get("kind") == "serve":
            name = entry.get("name")
            expect(entry.get("max_abs_diff") == 0.0,
                   f"entry {name!r}: serve entries must be bit-exact (max_abs_diff == 0.0)")
            for key in ("samples", "batch_size"):
                expect(isinstance(entry.get(key), int) and entry[key] >= 1,
                       f"entry {name!r}: {key} must be a positive int")
            value = entry.get("batched_autograd_seconds")
            expect(isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
                   f"entry {name!r}: batched_autograd_seconds must be a finite float > 0")
            for section, keys in (
                ("throughput", ("naive_per_sample", "batched_autograd", "compiled")),
                ("latency_ms", ("naive_p50", "naive_p99", "compiled_p50", "compiled_p99")),
            ):
                table = entry.get(section)
                expect(isinstance(table, dict), f"entry {name!r}: {section} must be a dict")
                for key in keys:
                    value = table.get(key)
                    expect(
                        isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
                        f"entry {name!r}: {section}.{key} must be a finite float > 0",
                    )
    summary = record.get("summary")
    expect(isinstance(summary, dict), "summary must be a dict")
    for key in ("min_speedup", "geomean_speedup"):
        value = summary.get(key)
        expect(isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
               f"summary.{key} must be a finite float > 0")
    parallel = record.get("parallel")
    if parallel is not None:
        expect(record.get("kind") == "table1", "parallel section is table1-only")
        expect(isinstance(parallel, dict), "parallel must be a dict")
        expect(isinstance(parallel.get("jobs"), int) and parallel["jobs"] >= 2,
               "parallel.jobs must be an int >= 2")
        expect(isinstance(parallel.get("host_cpus"), int) and parallel["host_cpus"] >= 1,
               "parallel.host_cpus must be a positive int")
        expect(
            isinstance(parallel.get("seeds"), list) and parallel["seeds"]
            and all(isinstance(s, int) for s in parallel["seeds"]),
            "parallel.seeds must be a non-empty list of ints",
        )
        expect(isinstance(parallel.get("cells"), int) and parallel["cells"] >= 1,
               "parallel.cells must be a positive int")
        for key in (
            "per_cell_serial_seconds",
            "seed_loop_serial_seconds",
            "parallel_seconds",
            "speedup",
            "speedup_vs_seed_loop",
        ):
            value = parallel.get(key)
            expect(isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
                   f"parallel.{key} must be a finite float > 0")
        expect(parallel.get("rows_equal") is True,
               "parallel.rows_equal must be True (equality is asserted in-process)")
    precision = record.get("precision")
    if precision is not None:
        expect(record.get("kind") == "serve", "precision section is serve-only")
        expect(isinstance(precision, dict), "precision must be a dict")
        expect(
            isinstance(precision.get("parallel_workers"), int)
            and precision["parallel_workers"] >= 2,
            "precision.parallel_workers must be an int >= 2",
        )
        budgets = precision.get("budgets")
        expect(isinstance(budgets, dict) and {"f32", "int8"} <= set(budgets),
               "precision.budgets must cover f32 and int8")
        backbones = precision.get("backbones")
        expect(isinstance(backbones, list) and backbones,
               "precision.backbones must be a non-empty list")
        for backbone in backbones:
            bname = backbone.get("name")
            expect(isinstance(bname, str) and bname, "precision backbone needs a name")
            for key in ("samples", "batch_size"):
                expect(isinstance(backbone.get(key), int) and backbone[key] >= 1,
                       f"precision backbone {bname!r}: {key} must be a positive int")
            expect(backbone.get("f64_bit_identical") is True,
                   f"precision backbone {bname!r}: f64_bit_identical must be True "
                   f"(identity is asserted in-process)")
            knn = backbone.get("knn")
            expect(isinstance(knn, dict), f"precision backbone {bname!r}: knn must be a dict")
            accuracy = knn.get("accuracy")
            expect(
                isinstance(accuracy, dict) and {"f64", "f32", "int8"} <= set(accuracy),
                f"precision backbone {bname!r}: knn.accuracy must cover every tier",
            )
            drops = knn.get("max_drop")
            expect(isinstance(drops, dict), f"precision backbone {bname!r}: knn.max_drop must be a dict")
            for tier, drop in drops.items():
                budget = budgets.get(tier)
                expect(
                    isinstance(drop, (int, float)) and np.isfinite(drop)
                    and isinstance(budget, (int, float)) and drop <= budget,
                    f"precision backbone {bname!r}: {tier} KNN drop {drop} "
                    f"exceeds its budget {budget}",
                )
            rows = backbone.get("rows")
            expect(isinstance(rows, list) and len(rows) >= 5,
                   f"precision backbone {bname!r}: rows must list >= 5 configurations")
            tiers = {row.get("precision") for row in rows}
            expect({"f64", "f32", "int8"} <= tiers,
                   f"precision backbone {bname!r}: rows must cover every tier")
            expect(any(row.get("parallel", 1) >= 2 for row in rows),
                   f"precision backbone {bname!r}: rows must include a parallel run")
            for row in rows:
                label = row.get("label")
                expect(isinstance(label, str) and label,
                       f"precision backbone {bname!r}: every row needs a label")
                for key in ("seconds", "throughput", "speedup_vs_f64"):
                    value = row.get(key)
                    expect(
                        isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
                        f"precision row {label!r}: {key} must be a finite float > 0",
                    )
                err = row.get("max_abs_err_vs_f64")
                expect(isinstance(err, (int, float)) and np.isfinite(err) and err >= 0,
                       f"precision row {label!r}: max_abs_err_vs_f64 must be >= 0")
                if row.get("precision") == "f64":
                    expect(err == 0.0,
                           f"precision row {label!r}: f64 rows must be bit-exact")
                latency = row.get("latency_ms")
                expect(
                    isinstance(latency, dict)
                    and all(
                        isinstance(latency.get(key), (int, float))
                        and np.isfinite(latency[key]) and latency[key] > 0
                        for key in ("p50", "p99")
                    ),
                    f"precision row {label!r}: latency_ms needs finite p50/p99 > 0",
                )
                arena = row.get("arena_stats")
                expect(isinstance(arena, dict), f"precision row {label!r}: arena_stats must be a dict")
                for key in ("hits", "allocs"):
                    expect(isinstance(arena.get(key), int) and arena[key] >= 0,
                           f"precision row {label!r}: arena_stats.{key} must be an int >= 0")
                rate = arena.get("reuse_rate")
                expect(
                    isinstance(rate, (int, float)) and np.isfinite(rate) and 0.0 <= rate <= 1.0,
                    f"precision row {label!r}: arena_stats.reuse_rate must be in [0, 1]",
                )
        best = precision.get("best_speedup_vs_f64")
        expect(isinstance(best, (int, float)) and np.isfinite(best) and best > 0,
               "precision.best_speedup_vs_f64 must be a finite float > 0")
    multi = record.get("multi_tenant")
    if multi is not None:
        expect(record.get("kind") == "serve", "multi_tenant section is serve-only")
        expect(isinstance(multi, dict), "multi_tenant must be a dict")
        for key, floor in (
            ("tenants", 3),
            ("seed_slot_tenants", 2),
            ("static_tenants", 1),
            ("rounds", 1),
            ("per_tenant", 1),
            ("requests", 1),
            ("swaps", 0),
        ):
            value = multi.get(key)
            expect(isinstance(value, int) and value >= floor,
                   f"multi_tenant.{key} must be an int >= {floor}")
        for table, prefix in ((multi, "multi_tenant"), (multi.get("seed_slot"), "multi_tenant.seed_slot")):
            expect(isinstance(table, dict), f"{prefix} must be a dict")
            for key in ("serial_seconds", "grouped_seconds", "speedup"):
                value = table.get(key)
                expect(isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
                       f"{prefix}.{key} must be a finite float > 0")
        throughput = multi.get("throughput")
        expect(isinstance(throughput, dict), "multi_tenant.throughput must be a dict")
        for key in ("serial", "grouped"):
            value = throughput.get(key)
            expect(isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
                   f"multi_tenant.throughput.{key} must be a finite float > 0")
        cache = multi.get("program_cache")
        expect(isinstance(cache, dict), "multi_tenant.program_cache must be a dict")
        for key in ("hit", "miss", "evict"):
            value = cache.get(key)
            expect(isinstance(value, int) and value >= 0,
                   f"multi_tenant.program_cache.{key} must be an int >= 0")
        expect(cache.get("hit", 0) >= 1,
               "multi_tenant.program_cache.hit must be >= 1 "
               "(seed-slot tenants must share programs)")
        rate = cache.get("hit_rate")
        expect(
            isinstance(rate, (int, float)) and np.isfinite(rate) and 0.0 <= rate <= 1.0,
            "multi_tenant.program_cache.hit_rate must be in [0, 1]",
        )
        expect(multi.get("bit_identical") is True,
               "multi_tenant.bit_identical must be True (identity is asserted in-process)")


#: Suite name -> bench runner, in emission order.  ``load`` is opt-in
#: (not part of the default sweep): it binds a TCP port and runs
#: ``>= 3 * load_duration`` seconds of wall-clock traffic.
_BENCH_SUITES = {
    "autograd": run_autograd_bench,
    "table1": run_table1_bench,
    "serve": run_serve_bench,
    "load": run_load_bench,
    "robustness": run_robustness_bench,
}

#: Suites the no-``--suite`` default runs (everything but the opt-in
#: ``load`` and ``robustness`` suites, which run whole grids).
_DEFAULT_SUITES = ("autograd", "table1", "serve")


def write_bench_records(
    out_dir: str = ".",
    scale: str = "tiny",
    repeats: int = 3,
    jobs: int = 1,
    suites: tuple[str, ...] | None = None,
    tenants: int = 4,
    load_duration: float = 1.0,
    shards: int = 4,
) -> list[str]:
    """Run the selected benches and write one ``BENCH_<kind>.json`` each.

    ``suites`` selects a subset of :data:`_BENCH_SUITES` (default:
    :data:`_DEFAULT_SUITES` — everything but the opt-in ``load`` suite).
    ``jobs > 1`` adds the grid-runtime ``parallel`` section to the Table I
    record (markedly slower: it runs the quick Table I grid three times).
    ``tenants`` sizes the serve record's ``multi_tenant`` section
    (``0`` disables it; otherwise >= 3).  ``load_duration`` is the
    seconds of traffic per offered-load level in the ``load`` suite;
    ``shards`` caps its ``scaling`` sweep (``< 2`` skips the section).
    """
    if suites is None:
        suites = _DEFAULT_SUITES
    unknown = [kind for kind in suites if kind not in _BENCH_SUITES]
    if unknown:
        raise ValueError(f"unknown bench suite(s): {unknown}; known: {sorted(_BENCH_SUITES)}")
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for kind in suites:
        runner = _BENCH_SUITES[kind]
        kwargs: dict[str, object] = {}
        if kind == "table1":
            kwargs["jobs"] = jobs
        elif kind == "serve":
            kwargs["tenants"] = tenants
        elif kind == "load":
            kwargs["duration"] = load_duration
            kwargs["shards"] = shards
        elif kind == "robustness":
            kwargs["jobs"] = max(jobs, 2)  # the parallel pin needs >= 2
        record = runner(scale=scale, repeats=repeats, **kwargs)
        path = os.path.join(out_dir, f"BENCH_{kind}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths


def _format_load_record(record: dict) -> str:
    """Human-readable table for the ``load`` record."""
    server = record["server"]
    lines = [
        f"load bench  (scale={record['scale']}, {record['tenants']} tenants, "
        f"capacity est. {record['capacity_estimate_rps']:.1f} req/s)",
        f"server: queue_limit={server['queue_limit']}  max_batch={server['max_batch']}  "
        f"target_batch={server['target_batch_seconds'] * 1e3:.0f}ms  "
        f"deadline={server['deadline_seconds'] * 1e3:.0f}ms",
        f"{'offered':>9} {'achieved':>9} {'ok':>6} {'rej':>5} {'miss':>5}  "
        f"{'p50':>8} {'p99':>8} {'p999':>8}",
    ]
    for level in record["load"]["levels"]:
        latency = level["latency_ms"]
        lines.append(
            f"{level['offered_rate']:>7.1f}/s {level['achieved_rate']:>7.1f}/s "
            f"{level['ok']:>6} {level['rejected']:>5} {level['deadline_missed']:>5}  "
            f"{latency['p50']:>6.2f}ms {latency['p99']:>6.2f}ms "
            f"{latency['p999']:>6.2f}ms"
        )
        depth = ", ".join(
            f"{bucket}:{count}"
            for bucket, count in sorted(
                level["queue_depth"].items(), key=lambda kv: int(kv[0])
            )
        )
        size = ", ".join(
            f"{bucket}:{count}"
            for bucket, count in sorted(
                level["batch_size"].items(), key=lambda kv: int(kv[0])
            )
        )
        lines.append(f"{'':>9} queue depth {{{depth}}}  batch size {{{size}}}")
    summary = record["summary"]
    lines.append(
        f"summary: peak achieved {summary['peak_achieved_rate']:.1f} req/s  "
        f"(replayed {record['replayed_batches']} batch(es) bit-identical: "
        f"{record['bit_identical']})"
    )
    scaling = record.get("scaling")
    if scaling:
        lines.append(
            f"scaling ({scaling['start_method']}, host_cpus="
            f"{scaling['host_cpus']}):"
        )
        for entry in scaling["entries"]:
            peak = max(level["achieved_rate"] for level in entry["levels"])
            lines.append(
                f"  {entry['shards']} shard(s): capacity est. "
                f"{entry['capacity_estimate_rps']:>7.1f}/s  peak achieved "
                f"{peak:>7.1f}/s  (replayed {entry['replayed_batches']} "
                f"batch(es) bit-identical: {entry['bit_identical']})"
            )
        ratio = scaling["summary"]["capacity_ratio"]
        lines.append(
            f"  capacity ratio {scaling['summary']['top_shards']} vs 1 shard: "
            f"{ratio:.2f}x"
        )
    return "\n".join(lines)


def _format_robustness_record(record: dict) -> str:
    """Human-readable table for the ``robustness`` record."""
    grid = record["grid"]
    headline = record["headline"]
    lines = [
        f"robustness bench  (scale={record['scale']}, backbone={grid['backbone']}, "
        f"{len(grid['seeds'])} seed(s))",
        f"grid: {len(grid['methods'])} methods x {len(grid['corruptions'])} "
        f"corruptions x {len(grid['severities'])} severities "
        f"= {len(record['cells'])} cells",
        f"headline: MetaLoRA vs {headline['baseline']} under corruption: "
        f"{headline['corrupted_delta']:+.4f} accuracy "
        f"(clean: {headline['clean_delta']:+.4f})",
        f"{'method':<14} {'mean slope':>11}  per-corruption slope (acc/severity)",
    ]
    for method in grid["methods"]:
        entry = record["slopes"][method]
        worst = min(entry["per_corruption"], key=entry["per_corruption"].get)
        lines.append(
            f"{method:<14} {entry['mean']:>+10.4f}   worst {worst} "
            f"({entry['per_corruption'][worst]:+.4f})"
        )
    parallel = record["parallel"]
    lines.append(
        f"grid runs: serial {parallel['serial_seconds']:.2f}s   "
        f"parallel({parallel['jobs']}) {parallel['parallel_seconds']:.2f}s   "
        f"(cells bit-identical: {parallel['cells_equal']}; severity-0 == "
        f"clean Table I: {record['severity0_bit_identical']})"
    )
    resume = record["resume"]
    lines.append(
        f"resume: {resume['removed_cells']} cell(s) recomputed, "
        f"{resume['restored_cells']} restored  "
        f"(bit-identical: {resume['cells_equal']})"
    )
    stream = record["stream"]
    lines.append(f"streaming drift ({stream['steps']} steps, K={stream['k']}):")
    for method, entry in stream["methods"].items():
        lines.append(
            f"  {method:<14} mean accuracy {entry['mean_accuracy']:.3f}   "
            f"mean re-fit {entry['mean_refit_latency_s'] * 1e3:.1f}ms"
        )
    return "\n".join(lines)


def format_bench_record(record: dict) -> str:
    """Human-readable table for one record (what the CLI prints)."""
    if record.get("kind") == "load":
        return _format_load_record(record)
    if record.get("kind") == "robustness":
        return _format_robustness_record(record)
    lines = [
        f"{record['kind']} bench  (scale={record['scale']}, "
        f"best of {record['repeats']})",
        f"{'case':<28} {'reference':>11} {'optimized':>11} {'speedup':>9}  {'max|diff|':>10}",
    ]
    for entry in record["entries"]:
        lines.append(
            f"{entry['name']:<28} {entry['reference_seconds'] * 1e3:>9.2f}ms "
            f"{entry['optimized_seconds'] * 1e3:>9.2f}ms "
            f"{entry['speedup']:>8.2f}x  {entry['max_abs_diff']:>10.2e}"
        )
    summary = record["summary"]
    lines.append(
        f"{'summary':<28} min {summary['min_speedup']:.2f}x   "
        f"geomean {summary['geomean_speedup']:.2f}x"
    )
    if record["kind"] == "serve":
        for entry in record["entries"]:
            throughput, latency = entry["throughput"], entry["latency_ms"]
            lines.append(
                f"{entry['name']:<28} throughput (samples/s): "
                f"naive {throughput['naive_per_sample']:.1f}   "
                f"batched {throughput['batched_autograd']:.1f}   "
                f"compiled {throughput['compiled']:.1f}"
            )
            lines.append(
                f"{'':<28} latency p50/p99 (ms): "
                f"naive {latency['naive_p50']:.2f}/{latency['naive_p99']:.2f}   "
                f"compiled {latency['compiled_p50']:.2f}/{latency['compiled_p99']:.2f}"
            )
    precision = record.get("precision")
    if precision:
        lines.append(
            f"precision matrix ({precision['parallel_workers']} workers; "
            f"budgets f32<={precision['budgets']['f32']}, "
            f"int8<={precision['budgets']['int8']}):"
        )
        for backbone in precision["backbones"]:
            knn = backbone["knn"]
            accuracy = "  ".join(
                f"{tier} {knn['accuracy'][tier]:.3f}"
                for tier in ("f64", "f32", "int8")
            )
            lines.append(
                f"  {backbone['name']}: knn accuracy {accuracy}  "
                f"(f64 bit-identical: {backbone['f64_bit_identical']})"
            )
            for row in backbone["rows"]:
                arena = row["arena_stats"]
                lines.append(
                    f"    {row['label']:<16} {row['seconds'] * 1e3:>8.2f}ms  "
                    f"{row['throughput']:>7.1f}/s  "
                    f"x{row['speedup_vs_f64']:<5.2f} "
                    f"p50/p99 {row['latency_ms']['p50']:.2f}/"
                    f"{row['latency_ms']['p99']:.2f}ms  "
                    f"err {row['max_abs_err_vs_f64']:.1e}  "
                    f"arena {arena['reuse_rate']:.2f}"
                )
        lines.append(
            f"  best f32+fusion speedup vs f64 record: "
            f"{precision['best_speedup_vs_f64']:.2f}x"
        )
    multi = record.get("multi_tenant")
    if multi:
        cache = multi["program_cache"]
        lines.append(
            f"multi-tenant ({multi['tenants']} tenants: "
            f"{multi['seed_slot_tenants']} seed-slot + {multi['static_tenants']} static, "
            f"{multi['requests']} requests, {multi['swaps']} swap(s)):"
        )
        lines.append(
            f"  serial {multi['serial_seconds'] * 1e3:.2f}ms   "
            f"grouped {multi['grouped_seconds'] * 1e3:.2f}ms   "
            f"speedup {multi['speedup']:.2f}x  "
            f"(bit-identical: {multi['bit_identical']})"
        )
        seed_slot = multi["seed_slot"]
        lines.append(
            f"  seed-slot only: serial {seed_slot['serial_seconds'] * 1e3:.2f}ms   "
            f"grouped {seed_slot['grouped_seconds'] * 1e3:.2f}ms   "
            f"speedup {seed_slot['speedup']:.2f}x"
        )
        lines.append(
            f"  program cache: {cache['hit']} hit / {cache['miss']} miss / "
            f"{cache['evict']} evict  (hit rate {cache['hit_rate']:.2f})"
        )
    parallel = record.get("parallel")
    if parallel:
        lines.append(
            f"parallel grid ({parallel['cells']} cells, {parallel['jobs']} workers, "
            f"{parallel['host_cpus']} host cpu(s)):"
        )
        lines.append(
            f"  per-cell serial {parallel['per_cell_serial_seconds']:.2f}s   "
            f"seed-loop serial {parallel['seed_loop_serial_seconds']:.2f}s   "
            f"parallel {parallel['parallel_seconds']:.2f}s"
        )
        lines.append(
            f"  speedup {parallel['speedup']:.2f}x vs per-cell serial, "
            f"{parallel['speedup_vs_seed_loop']:.2f}x vs seed loop  "
            f"(rows bit-identical: {parallel['rows_equal']})"
        )
    return "\n".join(lines)
