"""Tests for the differentiable einsum — the backbone of every tensor-
network contraction in the library."""

import numpy as np
import pytest

from repro.autograd import check_gradients, einsum, tensor
from repro.errors import ShapeError


def _t(rng, shape):
    return tensor(rng.normal(size=shape), requires_grad=True, dtype=np.float64)


class TestForwardValues:
    def test_matmul_equivalence(self, rng):
        a, b = _t(rng, (3, 4)), _t(rng, (4, 5))
        assert np.allclose(einsum("ij,jk->ik", a, b).data, a.data @ b.data)

    def test_trace_style_contraction(self, rng):
        a, b = _t(rng, (3, 4)), _t(rng, (4, 3))
        out = einsum("ij,ji->", a, b)
        assert out.data == pytest.approx(np.trace(a.data @ b.data))

    def test_cp_contraction_eq6(self, rng):
        """ΔW = Σ_r A[:,r] B[r,:] c_r — the MetaLoRA (CP) core expression."""
        a, b, c = _t(rng, (6, 3)), _t(rng, (3, 5)), _t(rng, (3,))
        out = einsum("ir,ro,r->io", a, b, c)
        manual = sum(
            c.data[r] * np.outer(a.data[:, r], b.data[r]) for r in range(3)
        )
        assert np.allclose(out.data, manual)

    def test_tr_contraction_eq7(self, rng):
        """ΔW = Σ A[p,:,r] B[r,:,q] C[q,p] — the MetaLoRA (TR) core expression."""
        a, b, c = _t(rng, (2, 6, 3)), _t(rng, (3, 5, 2)), _t(rng, (2, 2))
        out = einsum("pir,roq,qp->io", a, b, c)
        manual = np.einsum("pir,roq,qp->io", a.data, b.data, c.data)
        assert np.allclose(out.data, manual)

    def test_single_operand_permutation(self, rng):
        x = _t(rng, (2, 3, 4))
        assert einsum("abc->cab", x).shape == (4, 2, 3)


class TestGradients:
    def test_two_operand(self, rng):
        check_gradients(lambda a, b: einsum("ij,jk->ik", a, b), [_t(rng, (3, 4)), _t(rng, (4, 2))])

    def test_three_operand_cp(self, rng):
        check_gradients(
            lambda a, b, c: einsum("ir,ro,r->io", a, b, c),
            [_t(rng, (4, 3)), _t(rng, (3, 5)), _t(rng, (3,))],
        )

    def test_four_operand_batched(self, rng):
        check_gradients(
            lambda x, a, b, c: einsum("ni,ir,ro,nr->no", x, a, b, c),
            [_t(rng, (2, 4)), _t(rng, (4, 3)), _t(rng, (3, 5)), _t(rng, (2, 3))],
        )

    def test_solo_summed_index_broadcast_gradient(self, rng):
        # 'b' appears only in the input: grad must broadcast back over it.
        check_gradients(lambda x: einsum("ab->a", x), [_t(rng, (3, 5))])

    def test_solo_summed_middle_index(self, rng):
        check_gradients(lambda x: einsum("abc->ac", x), [_t(rng, (2, 4, 3))])

    def test_solo_summed_with_other_operand(self, rng):
        check_gradients(
            lambda x, y: einsum("abc,cd->ad", x, y),
            [_t(rng, (2, 3, 4)), _t(rng, (4, 5))],
        )

    def test_full_reduction(self, rng):
        check_gradients(lambda x: einsum("ab->", x) * 1.0, [_t(rng, (3, 3))])

    def test_tr_per_sample_conv_spec(self, rng):
        # The exact spec used by MetaLoRATRConv's forward.
        check_gradients(
            lambda m, b, c: einsum("nprhw,roq,nqp->nohw", m, b, c),
            [_t(rng, (2, 2, 2, 3, 3)), _t(rng, (2, 4, 2)), _t(rng, (2, 2, 2))],
        )


class TestValidation:
    def test_requires_explicit_output(self, rng):
        with pytest.raises(ShapeError):
            einsum("ij,jk", _t(rng, (2, 2)), _t(rng, (2, 2)))

    def test_rejects_ellipsis(self, rng):
        with pytest.raises(ShapeError):
            einsum("...i->...", _t(rng, (2, 3)))

    def test_rejects_repeated_label_in_operand(self, rng):
        with pytest.raises(ShapeError):
            einsum("ii->i", _t(rng, (3, 3)))

    def test_operand_count_mismatch(self, rng):
        with pytest.raises(ShapeError):
            einsum("ij,jk->ik", _t(rng, (2, 2)))

    def test_rank_mismatch(self, rng):
        with pytest.raises(ShapeError):
            einsum("ij->ij", _t(rng, (2, 2, 2)))
