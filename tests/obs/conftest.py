"""Keep the process-wide observability singletons clean between tests."""

import pytest

from repro.obs import OBS, TRACER


@pytest.fixture(autouse=True)
def clean_obs():
    """Restore OBS/TRACER enabled-state and drop recorded data after each test."""
    previous = (OBS.enabled, TRACER.enabled)
    yield
    OBS.enabled, TRACER.enabled = previous
    OBS.reset()
    TRACER.reset()
