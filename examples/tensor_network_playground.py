"""Tensor-network playground: the math of Figures 1-3, hands on.

Demonstrates the :mod:`repro.tensornet` substrate:

- tensor diagrams and contraction planning (Fig. 1),
- convolution as a contraction with a binary dummy tensor (Fig. 2, Eq. 2),
- LoRA and Conv-LoRA as tensor networks (Fig. 3, Eq. 5),
- CP and Tensor Ring decompositions of a real weight tensor (Eqs. 3-4).

Run:  python examples/tensor_network_playground.py
"""

import numpy as np

from repro.autograd import Tensor, conv2d
from repro.tensornet import (
    TensorNetwork,
    conv1d_direct,
    conv1d_via_dummy,
    cp_decompose,
    cp_to_tensor,
    render_diagram,
    tr_decompose,
    tr_to_tensor,
    tucker_decompose,
    tucker_to_tensor,
)

rng = np.random.default_rng(0)


def figure1_diagrams() -> None:
    print("=" * 60)
    print("Fig. 1 — tensor diagrams and contraction planning")
    print("=" * 60)
    net = TensorNetwork()
    net.add("A", rng.normal(size=(8, 3)), ("i", "r"))     # LoRA down-projection
    net.add("B", rng.normal(size=(3, 16)), ("r", "o"))    # LoRA up-projection
    print(render_diagram(net))
    delta_w = net.contract()
    print(f"\ncontract() -> ΔW with shape {delta_w.shape} (LoRA's low-rank update)")

    # A longer chain shows why contraction order matters.
    chain = TensorNetwork()
    chain.add("x", rng.normal(size=(4, 6)), ("b", "i"))
    chain.add("W1", rng.normal(size=(6, 5)), ("i", "h"))
    chain.add("W2", rng.normal(size=(5, 300)), ("h", "o"))
    result, schedule = chain.contract_with_schedule()
    print("\ngreedy contraction schedule (smallest intermediates first):")
    for step in schedule:
        print(f"  {step.left} ⨉ {step.right} -> {step.result}  (size {step.result_size})")
    assert np.allclose(result, chain.contract())


def figure2_dummy_conv() -> None:
    print("\n" + "=" * 60)
    print("Fig. 2 — convolution as a tensor contraction (Eq. 2)")
    print("=" * 60)
    signal = rng.normal(size=11)
    kernel = rng.normal(size=3)
    for stride, padding in [(1, 0), (2, 1)]:
        via_dummy = conv1d_via_dummy(signal, kernel, stride, padding)
        direct = conv1d_direct(signal, kernel, stride, padding)
        gap = np.abs(via_dummy - direct).max()
        print(f"  stride={stride} padding={padding}:  max |Σ P a b − conv| = {gap:.2e}")


def figure3_conv_lora() -> None:
    print("\n" + "=" * 60)
    print("Fig. 3 — Conv-LoRA ≡ small conv + 1×1 conv (Eq. 5)")
    print("=" * 60)
    k, c_in, c_out, rank = 3, 4, 8, 2
    a = rng.normal(size=(k, k, c_in, rank)).astype(np.float32)   # small conv
    b = rng.normal(size=(rank, c_out)).astype(np.float32)        # 1×1 recovery
    x = rng.normal(size=(2, c_in, 6, 6)).astype(np.float32)

    # Path 1: materialize ΔW = A ×₄ B, convolve once.
    delta_w = np.einsum("abir,ro->abio", a, b)
    out_materialized = conv2d(Tensor(x), Tensor(delta_w), padding=1).data

    # Path 2: small conv to R channels, then the 1×1 channel recovery.
    mid = conv2d(Tensor(x), Tensor(a), padding=1).data
    out_factored = np.einsum("nrhw,ro->nohw", mid, b)

    gap = np.abs(out_materialized - out_factored).max()
    full = k * k * c_in * c_out
    lora = a.size + b.size
    print(f"  equivalence gap: {gap:.2e}")
    print(f"  parameters: full ΔW = {full},  Conv-LoRA = {lora} "
          f"({100 * lora / full:.0f}%)")


def formats_on_a_real_weight() -> None:
    print("\n" + "=" * 60)
    print("Eqs. 3-4 — CP / TR / Tucker on a convolutional weight tensor")
    print("=" * 60)
    weight = rng.normal(size=(3, 3, 8, 16))  # (K, K, I, O)
    norm = np.linalg.norm(weight)
    for rank in (1, 2, 4, 8):
        cp = cp_decompose(weight, rank, rng, iterations=60)
        cp_err = np.linalg.norm(weight - cp_to_tensor(cp)) / norm
        tr = tr_decompose(weight, max_rank=rank)
        tr_err = np.linalg.norm(weight - tr_to_tensor(tr)) / norm
        tk = tucker_decompose(weight, (3, 3, min(rank, 8), min(rank, 16)))
        tk_err = np.linalg.norm(weight - tucker_to_tensor(tk)) / norm
        print(
            f"  rank {rank}:  CP err={cp_err:.3f} ({cp.parameter_count()} params)   "
            f"TR err={tr_err:.3f} ({tr.parameter_count()} params)   "
            f"Tucker err={tk_err:.3f} ({tk.parameter_count()} params)"
        )


if __name__ == "__main__":
    figure1_diagrams()
    figure2_dummy_conv()
    figure3_conv_lora()
    formats_on_a_real_weight()
