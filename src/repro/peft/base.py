"""Adapter base class and model surgery primitives.

:func:`repro.peft.api.attach` walks a model, replaces every target layer
with an adapter wrapping it, and freezes the base weights — the defining
PEFT mechanic: only adapter parameters receive gradients.  This module
holds the pieces it is built from: the :class:`Adapter` base class and
the ``get_module`` / ``set_module`` surgery helpers.  ``merge_adapters``
reverses the surgery, baking each static adapter's ``ΔW`` into the base
layer so inference costs exactly the original model.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import AdapterError
from repro.nn.module import Module


class Adapter(Module):
    """Base class for adapters wrapping a frozen ``base`` layer.

    Subclasses implement ``forward`` (base output + low-rank delta) and,
    for static adapters, ``delta_weight`` so merging is possible.  Meta
    adapters (input-conditioned ΔW) override ``set_seed`` and report
    ``is_meta = True``; their ΔW differs per sample, so they cannot merge.
    """

    is_meta = False

    def __init__(self, base: Module) -> None:
        super().__init__()
        base.freeze()
        self.base = base

    def delta_weight(self) -> np.ndarray:
        """The materialized weight update ``ΔW`` (static adapters only)."""
        raise AdapterError(f"{type(self).__name__} cannot materialize a static ΔW")

    def merge(self) -> Module:
        """Return the base layer with ``ΔW`` folded into its weight.

        Merging is one-shot: a second call would fold ΔW in twice and
        silently corrupt the weights, so it raises instead.
        """
        if getattr(self, "_merged", False):
            raise AdapterError(
                f"{type(self).__name__} is already merged; merging again "
                f"would apply ΔW twice"
            )
        delta = self.delta_weight()
        if delta.shape != self.base.weight.data.shape:
            raise AdapterError(
                f"delta shape {delta.shape} does not match base weight "
                f"{self.base.weight.data.shape}"
            )
        self.base.weight.data[...] = self.base.weight.data + delta
        self._merged = True
        return self.base

    def set_seed(self, seed: Tensor | None) -> None:
        """Install the per-sample seed (meta adapters only)."""
        raise AdapterError(f"{type(self).__name__} does not take a generated seed")


def get_module(root: Module, dotted_name: str) -> Module:
    """Resolve ``"blocks.0.conv1"`` style paths."""
    module: Module = root
    for part in dotted_name.split("."):
        children = module._modules
        if part not in children:
            raise AdapterError(f"no child {part!r} under {type(module).__name__}")
        module = children[part]
    return module


def set_module(root: Module, dotted_name: str, new_module: Module) -> None:
    """Replace the child at ``dotted_name`` with ``new_module``.

    Containers that iterate an internal ``_items`` list (Sequential,
    ModuleList, and any custom block built the same way) are kept
    consistent by *identity*: every slot holding the replaced child is
    updated, regardless of what name the child was registered under.
    Matching on the registered name alone would leave ``_items`` stale
    whenever a container registers children under non-positional names —
    forward() would keep calling the old module while named_modules()
    reports the new one.
    """
    parts = dotted_name.split(".")
    parent = get_module(root, ".".join(parts[:-1])) if len(parts) > 1 else root
    leaf = parts[-1]
    if leaf not in parent._modules:
        raise AdapterError(f"no child {leaf!r} under {type(parent).__name__}")
    old_module = parent._modules[leaf]
    parent.register_module(leaf, new_module)
    items = getattr(parent, "_items", None)
    if isinstance(items, list):
        for index, item in enumerate(items):
            if item is old_module:
                items[index] = new_module


def iter_adapters(model: Module) -> Iterator[tuple[str, Adapter]]:
    """Yield every adapter in the model with its dotted name."""
    for name, module in model.named_modules():
        if isinstance(module, Adapter):
            yield name, module


def merge_adapters(model: Module) -> Module:
    """Merge every static adapter back into its base layer, in place.

    Meta adapters are rejected *before* any weight is touched, so a mixed
    model is never left half-merged.  Each merged base layer is trainable
    again afterwards — once the adapter is gone it is an ordinary layer,
    not a frozen PEFT backbone.
    """
    merged = [(name, adapter) for name, adapter in iter_adapters(model)]
    for name, adapter in merged:
        if adapter.is_meta:
            raise AdapterError(
                f"adapter {name!r} is input-conditioned (meta) and cannot be merged"
            )
    for name, adapter in merged:
        base = adapter.merge()
        set_module(model, name, base)
        base.unfreeze()
    return model
