"""Tests for the sharded Table I grid.

The headline property: :func:`repro.runtime.run_table1_grid` is
**bit-identical** to the serial :func:`repro.eval.protocol.run_table1`
loop at any worker count, because every cell derives its RNG from its
``(seed, method)`` key alone.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, WorkerError
from repro.eval.protocol import Table1Config, run_table1
from repro.perf import FLAGS
from repro.runtime import fork_available, run_table1_grid
from repro.runtime import table1 as table1_runtime

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)


def _rows_equal(a, b):
    return set(a) == set(b) and all(
        a[m].accuracy_by_k == b[m].accuracy_by_k for m in a
    )


@needs_fork
def test_grid_bit_identical_to_serial_at_jobs_2():
    config = Table1Config().quick()
    serial = run_table1(config, seed=0)
    fallback = run_table1_grid(config, (0,), jobs=1)
    parallel = run_table1_grid(config, (0,), jobs=2)
    assert _rows_equal(fallback.rows_by_seed[0], serial)
    assert _rows_equal(parallel.rows_by_seed[0], serial)
    assert all(r.ok for r in parallel.cell_results)
    assert parallel.failures == []


def test_empty_seeds_rejected():
    with pytest.raises(ConfigError, match="seed"):
        run_table1_grid(Table1Config().quick(), ())


class TestFailureHandling:
    """Failure semantics, exercised serially with a sabotaged cell fn —
    pool-level crash isolation is covered by the pool tests."""

    @pytest.fixture()
    def sabotaged(self, monkeypatch):
        config = Table1Config().quick()
        real = table1_runtime._run_cell

        def flaky(cell):
            if cell[2] == "lora":
                raise RuntimeError("sabotaged lora cell")
            return real(cell)

        monkeypatch.setattr(table1_runtime, "_run_cell", flaky)
        return config

    def test_strict_raises_after_grid_drains(self, sabotaged):
        with pytest.raises(WorkerError, match=r"sabotaged lora cell"):
            run_table1_grid(sabotaged, (0,), jobs=1)

    def test_non_strict_omits_failed_rows(self, sabotaged):
        grid = run_table1_grid(sabotaged, (0,), jobs=1, strict=False)
        rows = grid.rows_by_seed[0]
        assert "lora" not in rows
        assert set(rows) == set(sabotaged.methods) - {"lora"}
        assert [f.key for f in grid.failures] == [(0, "lora")]


def test_cells_run_under_the_memory_diet(monkeypatch):
    # The grid flips backward_release on around every cell (and only there).
    seen = {}

    def probe(cell):
        seen[cell[2]] = (FLAGS.backward_release, FLAGS.backward_inplace_accum)
        return object()

    monkeypatch.setattr(table1_runtime, "_run_cell", probe)
    config = Table1Config().quick()
    run_table1_grid(config, (0,), jobs=1)
    assert set(seen) == set(config.methods)
    assert all(flags == (True, True) for flags in seen.values())
    assert FLAGS.backward_release is False
