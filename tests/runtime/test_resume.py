"""The durability acceptance test: kill a grid mid-run, resume, compare.

A run killed partway (simulated with deterministic fault injection) must
resume from its run directory re-running only the missing cells, and the
final rows must be **bit-identical** to an uninterrupted serial
:func:`repro.eval.protocol.run_table1` — accuracies compared with ``==``,
not ``allclose``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import CheckpointError, WorkerError
from repro.eval.protocol import Table1Config, run_table1
from repro.perf import FAULTS_ENV
from repro.runtime import run_table1_grid

#: A reduced grid keeps this file fast; bit-identity is scheme-level and
#: does not depend on the method list.
METHODS = ("original", "lora", "multi_lora")


@pytest.fixture(scope="module")
def config():
    return replace(Table1Config().quick(), methods=METHODS)


@pytest.fixture(scope="module")
def serial_rows(config):
    return run_table1(config, 0)


class TestResume:
    def test_killed_run_resumes_bit_identical(
        self, config, serial_rows, tmp_path, monkeypatch
    ):
        root = tmp_path / "run"
        monkeypatch.setenv(FAULTS_ENV, "crash:0/multi_lora")
        with pytest.raises(WorkerError, match="multi_lora"):
            run_table1_grid(config, (0,), out_dir=root)
        # The crash landed after the sibling cells were checkpointed.
        monkeypatch.delenv(FAULTS_ENV)

        grid = run_table1_grid(config, (0,), resume=root)
        assert grid.restored == sorted([(0, "original"), (0, "lora")])
        assert grid.run_dir == str(root)
        # Only the missing cell (plus its seed context) was re-run.
        assert [r.key for r in grid.cell_results] == [
            ("context", 0),
            (0, "multi_lora"),
        ]
        rows = grid.rows_by_seed[0]
        assert set(rows) == set(METHODS)
        for method in METHODS:
            assert rows[method].accuracy_by_k == serial_rows[method].accuracy_by_k

    def test_fully_completed_run_resumes_without_recompute(
        self, config, serial_rows, tmp_path
    ):
        root = tmp_path / "run"
        run_table1_grid(config, (0,), out_dir=root)
        grid = run_table1_grid(config, (0,), resume=root)
        assert len(grid.restored) == len(METHODS)
        assert grid.cell_results == []  # no contexts, no cells
        rows = grid.rows_by_seed[0]
        for method in METHODS:
            assert rows[method].accuracy_by_k == serial_rows[method].accuracy_by_k

    def test_fresh_out_dir_recomputes_everything(
        self, config, serial_rows, tmp_path
    ):
        root = tmp_path / "run"
        run_table1_grid(config, (0,), out_dir=root)
        again = run_table1_grid(config, (0,), out_dir=root)  # fresh, not resume
        assert again.restored == []
        assert len([r for r in again.cell_results if r.key[0] != "context"]) == len(
            METHODS
        )
        rows = again.rows_by_seed[0]
        for method in METHODS:
            assert rows[method].accuracy_by_k == serial_rows[method].accuracy_by_k

    def test_resume_under_different_config_refused(self, config, tmp_path):
        root = tmp_path / "run"
        run_table1_grid(config, (0,), out_dir=root)
        other = replace(config, adapt_episodes=config.adapt_episodes + 1)
        with pytest.raises(CheckpointError, match="different\\s+configuration"):
            run_table1_grid(other, (0,), resume=root)

    def test_resume_of_nonexistent_dir_refused(self, config, tmp_path):
        with pytest.raises(CheckpointError, match="not a run directory"):
            run_table1_grid(config, (0,), resume=tmp_path / "missing")
