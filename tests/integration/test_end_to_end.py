"""Integration tests: the full pipeline at miniature scale.

These exercise pretraining, adapter injection, episodic adaptation and the
KNN protocol end to end — slow-ish (tens of seconds total), but they are
the tests that catch cross-module breakage.
"""

import numpy as np
import pytest

from repro.eval.protocol import Table1Config, pretrain_backbone, run_table1
from repro.utils.rng import new_rng


@pytest.fixture(scope="module")
def quick_config():
    config = Table1Config().quick()
    # Trim further: 2 methods only, tiny eval splits.
    from dataclasses import replace

    return replace(
        config,
        methods=("original", "meta_lora_tr"),
        adapt_episodes=10,
        support_per_task=16,
        query_per_task=16,
    )


class TestPretraining:
    def test_pretraining_learns_base_task(self):
        config = Table1Config().quick()
        rng = new_rng(0)
        backbone, state = pretrain_backbone(config, rng)
        assert state  # non-empty state dict
        assert backbone.parameter_count() > 0

    def test_pretrained_state_loadable_into_fresh_model(self):
        from repro.eval.protocol import build_backbone

        config = Table1Config().quick()
        __, state = pretrain_backbone(config, new_rng(0))
        fresh = build_backbone(config, new_rng(1))
        fresh.load_state_dict(state)  # must not raise


class TestFullProtocol:
    def test_run_table1_produces_all_methods_and_ks(self, quick_config):
        rows = run_table1(quick_config, seed=0)
        assert set(rows) == set(quick_config.methods)
        for row in rows.values():
            assert set(row.accuracy_by_k) == set(quick_config.ks)
            for acc in row.accuracy_by_k.values():
                assert 0.0 <= acc <= 1.0

    def test_accuracies_above_chance(self, quick_config):
        rows = run_table1(quick_config, seed=0)
        chance = 1.0 / quick_config.num_classes
        for method, row in rows.items():
            assert row.accuracy_by_k[5] > chance, method

    def test_deterministic_given_seed(self, quick_config):
        from dataclasses import replace

        tiny = replace(
            quick_config,
            methods=("original",),
            pretrain_samples=64,
            pretrain_epochs=1,
        )
        a = run_table1(tiny, seed=3)
        b = run_table1(tiny, seed=3)
        assert a["original"].accuracy_by_k == b["original"].accuracy_by_k


class TestMixerPipeline:
    def test_mixer_backbone_runs(self):
        from dataclasses import replace

        config = replace(
            Table1Config().quick(),
            backbone="mixer",
            methods=("lora", "meta_lora_cp"),
            adapt_episodes=5,
            support_per_task=16,
            query_per_task=16,
        )
        rows = run_table1(config, seed=0)
        assert set(rows) == {"lora", "meta_lora_cp"}
