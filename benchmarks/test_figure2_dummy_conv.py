"""Bench: **Figure 2** — convolution as a tensor network with dummy tensors.

Figure 2 shows that image convolution is a multilinear tensor operation:
two binary "dummy" tensors (one per spatial axis, Eq. 2) contracted with
the image and the kernel produce exactly the convolution output.  The
bench verifies the identity across a stride/padding sweep and times the
dummy-tensor contraction against the production im2col path (the
contraction is the *semantic* form; im2col is the fast one).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d
from repro.tensornet import conv1d_direct, conv1d_via_dummy, conv2d_via_dummy, dummy_tensor


SWEEP = [(1, 0), (1, 1), (2, 0), (2, 1), (3, 2)]


@pytest.mark.benchmark(group="figure2")
def test_figure2_identity_sweep(benchmark):
    """Eq. 2 holds for every stride/padding combination (1-D and 2-D)."""
    rng = np.random.default_rng(0)

    def run() -> float:
        worst = 0.0
        for stride, padding in SWEEP:
            signal = rng.normal(size=17)
            kernel = rng.normal(size=4)
            gap = np.abs(
                conv1d_via_dummy(signal, kernel, stride, padding)
                - conv1d_direct(signal, kernel, stride, padding)
            ).max()
            worst = max(worst, float(gap))
            x = rng.normal(size=(2, 3, 10, 10))
            w = rng.normal(size=(3, 3, 3, 4))
            ours = conv2d(
                Tensor(x.astype(np.float64)),
                Tensor(w.astype(np.float64)),
                stride=stride,
                padding=padding,
            ).data
            via_dummy = conv2d_via_dummy(x, w, stride, padding)
            worst = max(worst, float(np.abs(ours - via_dummy).max()))
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nworst |dummy-tensor conv − direct conv| over sweep: {worst:.2e}")
    assert worst < 1e-8


@pytest.mark.benchmark(group="figure2")
def test_figure2_dummy_tensor_sparsity(benchmark):
    """The dummy tensor is binary and has exactly one 1 per (output, tap)
    pair that lands inside the image — the structure Fig. 2 draws."""

    def run():
        p = dummy_tensor(32, 5, stride=2, padding=2)
        return p

    p = benchmark(run)
    assert set(np.unique(p)) <= {0.0, 1.0}
    per_output_tap = p.sum(axis=0)
    assert per_output_tap.max() == 1.0
    density = p.mean()
    print(f"\ndummy tensor density: {density:.4f} (sparse, as the figure suggests)")


@pytest.mark.benchmark(group="figure2")
def test_figure2_contraction_vs_im2col_timing(benchmark):
    """Times the semantic (dummy-tensor) path; prints both for comparison."""
    import time

    rng = np.random.default_rng(1)
    x = rng.normal(size=(4, 3, 16, 16))
    w = rng.normal(size=(3, 3, 3, 8))

    result = benchmark(lambda: conv2d_via_dummy(x, w, 1, 1))

    start = time.perf_counter()
    reference = conv2d(
        Tensor(x.astype(np.float64)), Tensor(w.astype(np.float64)), padding=1
    ).data
    im2col_time = time.perf_counter() - start
    assert np.allclose(result, reference, atol=1e-8)
    print(f"\nim2col single run: {1e3 * im2col_time:.2f} ms (production path)")
