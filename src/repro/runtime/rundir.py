"""Durable experiment run directories: per-cell checkpoints + manifest.

A *run directory* makes a multi-seed experiment grid survivable: every
completed ``(seed, method)`` cell is persisted the moment it finishes,
so a run killed N cells in — OOM, preemption, ctrl-C — resumes from its
run dir re-running only the missing cells.  Because each cell derives
all randomness from its key (:func:`repro.eval.protocol.method_rng`),
the resumed rows are **bit-identical** to an uninterrupted serial run.

Layout::

    <run_dir>/
      manifest.json            run-level manifest: format version, grid
                               spec (backbone, seeds, methods), config
                               fingerprint, the full config for humans
      cells/
        s<seed>__<method>.npz  one versioned artifact per completed cell
                               (repro.utils.serialization.save_artifact)

Both layers are written atomically (temp file + ``os.replace``), so a
kill mid-write can never leave a truncated checkpoint that a resume
would mistake for a completed cell.  Resuming validates the manifest —
format version and config fingerprint — and raises
:class:`repro.errors.CheckpointError` rather than silently mixing rows
computed under different configurations.

A run directory is also the landing place for the grid's trace export:
:meth:`RunDir.write_trace` appends the observability layer's finished
span trees to ``<run_dir>/trace.jsonl`` (append-only, so a resumed run
adds its trace next to the original's); ``repro trace <run_dir>``
renders it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile

import numpy as np

from repro.errors import CheckpointError, ConfigError
from repro.eval.protocol import Table1Config, Table1Row
from repro.obs.trace import TRACE_FILE, write_trace
from repro.utils.serialization import load_artifact, save_artifact

#: Version of the run-dir layout.  Bump on incompatible change; resuming
#: a run dir written by a different version is refused.
RUNDIR_VERSION = 1

#: Artifact ``kind`` of a persisted grid cell.
CELL_KIND = "table1_cell"

_MANIFEST = "manifest.json"
_CELLS = "cells"


def config_fingerprint(config: object) -> str:
    """A stable content hash of the full experiment configuration.

    Two runs share a fingerprint iff every knob that feeds the grid's
    numerics is identical — the invariant that makes mixing checkpointed
    rows with freshly computed ones safe.
    """
    payload = json.dumps(
        dataclasses.asdict(config), sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _atomic_write_text(path: str, text: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class RunDir:
    """Handle over one run directory; see the module docstring for layout."""

    def __init__(self, root: str | os.PathLike, manifest: dict) -> None:
        self.root = os.fspath(root)
        self.manifest = manifest

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: str | os.PathLike,
        config: Table1Config,
        seeds: tuple[int, ...],
    ) -> "RunDir":
        """Create (or adopt) a Table I run dir (compat for direct callers).

        Equivalent to :meth:`create_for` with the ``table1_run`` kind and
        the Table I grid section; :func:`run_table1_grid` goes through the
        generic :class:`~repro.runtime.grid.GridSpec` path instead.
        """
        return cls.create_for(
            root,
            "table1_run",
            config,
            {
                "backbone": config.backbone,
                "methods": list(config.methods),
                "seeds": sorted(int(s) for s in seeds),
            },
        )

    @classmethod
    def create_for(
        cls,
        root: str | os.PathLike,
        kind: str,
        config: object,
        grid: dict,
    ) -> "RunDir":
        """Create (or adopt) a run dir for one grid of the given ``kind``.

        A fresh directory gets a new manifest recording the grid section
        and the config fingerprint.  An existing run dir is adopted only
        if its manifest matches this grid's kind and configuration — that
        is what makes ``--out-dir`` idempotent and ``--resume`` safe; a
        mismatch raises :class:`CheckpointError` instead of contaminating
        the directory with cells from a different grid.  Integer-list
        grid entries (extendable axes like ``seeds``) are unioned into
        the manifest when new values appear; every other entry is pinned
        by the config fingerprint.
        """
        root = os.fspath(root)
        os.makedirs(os.path.join(root, _CELLS), exist_ok=True)
        manifest_path = os.path.join(root, _MANIFEST)
        fingerprint = config_fingerprint(config)
        if os.path.exists(manifest_path):
            rundir = cls.open(root, kind=kind)
            rundir.validate(config)
            changed = False
            for axis, values in grid.items():
                known = rundir.manifest["grid"].get(axis)
                if not (
                    isinstance(values, list)
                    and isinstance(known, list)
                    and all(isinstance(v, int) for v in values)
                    and all(isinstance(v, int) for v in known)
                ):
                    continue
                if not set(values) <= set(known):
                    rundir.manifest["grid"][axis] = sorted(set(known) | set(values))
                    changed = True
            if changed:
                _atomic_write_text(
                    manifest_path,
                    json.dumps(rundir.manifest, indent=2, sort_keys=True) + "\n",
                )
            return rundir
        manifest = {
            "format_version": RUNDIR_VERSION,
            "kind": kind,
            "config_fingerprint": fingerprint,
            "grid": dict(grid),
            "config": dataclasses.asdict(config),
        }
        _atomic_write_text(
            manifest_path, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        return cls(root, manifest)

    @classmethod
    def open(cls, root: str | os.PathLike, kind: str = "table1_run") -> "RunDir":
        """Open an existing run dir of the given ``kind``; raises
        :class:`CheckpointError` if the manifest is absent, unparsable,
        of another kind, or from another version."""
        root = os.fspath(root)
        manifest_path = os.path.join(root, _MANIFEST)
        if not os.path.exists(manifest_path):
            raise CheckpointError(
                f"{root!r} is not a run directory (no {_MANIFEST}); "
                f"start one with out_dir=/--out-dir"
            )
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"run dir {root!r} has a corrupt manifest: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("kind") != kind:
            raise CheckpointError(
                f"run dir {root!r} manifest is not a {kind} manifest"
            )
        version = manifest.get("format_version")
        if version != RUNDIR_VERSION:
            raise CheckpointError(
                f"run dir {root!r} has format version {version!r}; this "
                f"build reads version {RUNDIR_VERSION}"
            )
        return cls(root, manifest)

    def validate(self, config: object) -> None:
        """Refuse to mix this run dir with a different configuration."""
        recorded = self.manifest.get("config_fingerprint")
        actual = config_fingerprint(config)
        if recorded != actual:
            raise CheckpointError(
                f"run dir {self.root!r} was created for a different "
                f"configuration (fingerprint {recorded} != {actual}); "
                f"resuming would mix rows computed under different knobs — "
                f"use a fresh --out-dir"
            )

    # -- generic cell artifacts (GridSpec path) -------------------------------

    def artifact_path(self, filename: str) -> str:
        """Absolute path of a cell checkpoint under ``cells/``."""
        return os.path.join(self.root, _CELLS, filename)

    def save_cell_artifact(
        self, filename: str, arrays: dict, kind: str, meta: dict
    ) -> str:
        """Persist one completed cell as a versioned artifact; returns path."""
        path = self.artifact_path(filename)
        save_artifact(path, arrays, kind=kind, meta=meta)
        return path

    def load_cell_artifact(self, filename: str, kind: str) -> tuple[dict, dict]:
        """Load one cell checkpoint; returns ``(arrays, meta)``."""
        arrays, manifest = load_artifact(self.artifact_path(filename), kind=kind)
        return arrays, manifest.get("meta", {})

    # -- cells (table1 compat) ------------------------------------------------

    def cell_path(self, seed: int, method: str) -> str:
        return os.path.join(self.root, _CELLS, f"s{int(seed)}__{method}.npz")

    def save_cell(self, seed: int, method: str, row: Table1Row) -> str:
        """Persist one completed cell as a versioned artifact; returns path."""
        ks = sorted(row.accuracy_by_k)
        path = self.cell_path(seed, method)
        save_artifact(
            path,
            {
                "ks": np.asarray(ks, dtype=np.int64),
                "accuracy": np.asarray(
                    [row.accuracy_by_k[k] for k in ks], dtype=np.float64
                ),
            },
            kind=CELL_KIND,
            meta={"seed": int(seed), "method": method},
        )
        return path

    def load_cell(self, seed: int, method: str) -> Table1Row:
        """Restore one cell; :class:`CheckpointError` on any mismatch."""
        path = self.cell_path(seed, method)
        arrays, manifest = load_artifact(path, kind=CELL_KIND)
        meta = manifest.get("meta", {})
        if meta.get("seed") != int(seed) or meta.get("method") != method:
            raise CheckpointError(
                f"cell artifact {path!r} claims "
                f"(seed={meta.get('seed')!r}, method={meta.get('method')!r}) "
                f"but was indexed as (seed={seed}, method={method!r})"
            )
        return Table1Row(
            method=method,
            accuracy_by_k={
                int(k): float(a)
                for k, a in zip(arrays["ks"], arrays["accuracy"])
            },
        )

    def completed_cells(self) -> set[tuple[int, str]]:
        """Keys of every persisted cell, by filename (cheap, no loading)."""
        cells_dir = os.path.join(self.root, _CELLS)
        completed = set()
        if not os.path.isdir(cells_dir):
            return completed
        for name in os.listdir(cells_dir):
            if not (name.startswith("s") and name.endswith(".npz")):
                continue
            stem = name[1 : -len(".npz")]
            seed_part, sep, method = stem.partition("__")
            if not sep or not seed_part.isdigit():
                continue
            completed.add((int(seed_part), method))
        return completed

    def load_completed(
        self, seeds: tuple[int, ...], methods: tuple[str, ...]
    ) -> dict[tuple[int, str], Table1Row]:
        """Load every persisted cell belonging to this grid, validated."""
        wanted = {(int(s), m) for s in seeds for m in methods}
        return {
            key: self.load_cell(*key)
            for key in sorted(self.completed_cells() & wanted)
        }

    # -- trace export ---------------------------------------------------------

    @property
    def trace_path(self) -> str:
        """Path of this run's ``trace.jsonl`` span export."""
        return os.path.join(self.root, TRACE_FILE)

    def write_trace(self, spans: list[dict]) -> int:
        """Append finished span trees to the run's trace export.

        Append-only by design: a resumed run's trace lands next to the
        original's (each append carries its own ``trace`` tag, so span
        ids never collide).  Returns the number of records written.
        """
        return write_trace(self.trace_path, spans)


def resolve_run_dirs(
    out_dir: str | os.PathLike | None, resume: str | os.PathLike | None
) -> tuple[str | None, bool]:
    """Collapse the ``out_dir``/``resume`` pair into ``(root, resuming)``.

    ``resume`` implies its own directory is also the output; passing both
    with different paths is a configuration error.
    """
    if resume is not None and out_dir is not None:
        if os.path.abspath(os.fspath(resume)) != os.path.abspath(os.fspath(out_dir)):
            raise ConfigError(
                f"--resume ({os.fspath(resume)!r}) and --out-dir "
                f"({os.fspath(out_dir)!r}) point at different directories"
            )
    if resume is not None:
        return os.fspath(resume), True
    if out_dir is not None:
        return os.fspath(out_dir), False
    return None, False
