"""CANDECOMP/PARAFAC (CP) format (Eqs. 3–4).

A rank-``R`` CP tensor is a weighted sum of ``R`` rank-one tensors:

    X ≈ Σ_r λ_r  a_r^(1) ∘ a_r^(2) ∘ … ∘ a_r^(N)

stored as a weight vector ``λ ∈ R^R`` plus one factor matrix
``A^(n) ∈ R^{I_n × R}`` per mode.  This module provides construction,
reconstruction and an alternating-least-squares (ALS) decomposition.
MetaLoRA (CP) treats the meta-generated seed ``c`` as the λ weights of a
two-mode CP tensor (Eq. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError, ShapeError
from repro.tensornet.contraction import khatri_rao, unfold


@dataclass
class CPTensor:
    """Weights ``lam ∈ R^R`` and factors ``[A^(n) ∈ R^{I_n×R}]``."""

    lam: np.ndarray
    factors: list[np.ndarray]

    def __post_init__(self) -> None:
        self.lam = np.asarray(self.lam)
        self.factors = [np.asarray(f) for f in self.factors]
        if self.lam.ndim != 1:
            raise ShapeError(f"CP weights must be a vector, got shape {self.lam.shape}")
        rank = self.lam.shape[0]
        for i, factor in enumerate(self.factors):
            if factor.ndim != 2 or factor.shape[1] != rank:
                raise ShapeError(
                    f"CP factor {i} must have shape (I_{i}, {rank}), got {factor.shape}"
                )

    @property
    def rank(self) -> int:
        return int(self.lam.shape[0])

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(f.shape[0] for f in self.factors)

    def parameter_count(self) -> int:
        """Scalars stored by the format (weights + all factors)."""
        return self.lam.size + sum(f.size for f in self.factors)


def cp_to_tensor(cp: CPTensor) -> np.ndarray:
    """Materialize the full tensor from its CP format."""
    spec_in = ",".join(f"{chr(ord('a') + n)}r" for n in range(len(cp.factors)))
    spec_out = "".join(chr(ord("a") + n) for n in range(len(cp.factors)))
    return np.einsum(f"r,{spec_in}->{spec_out}", cp.lam, *cp.factors)


def random_cp(
    shape: tuple[int, ...], rank: int, rng: np.random.Generator
) -> CPTensor:
    """A random CP tensor with unit weights and Gaussian factors."""
    if rank <= 0:
        raise ShapeError(f"CP rank must be positive, got {rank}")
    factors = [rng.normal(size=(dim, rank)) for dim in shape]
    return CPTensor(lam=np.ones(rank), factors=factors)


def cp_decompose(
    tensor: np.ndarray,
    rank: int,
    rng: np.random.Generator,
    iterations: int = 100,
    tol: float = 1e-8,
) -> CPTensor:
    """Rank-``R`` CP decomposition via alternating least squares.

    Each sweep solves for one factor with the others fixed using the
    Khatri–Rao normal equations; factors are renormalized into the λ
    weights after each sweep for numerical stability.  Raises
    :class:`DecompositionError` if ALS produces non-finite values.
    """
    if tensor.ndim < 2:
        raise ShapeError("CP decomposition needs a tensor of order >= 2")
    if rank <= 0:
        raise ShapeError(f"CP rank must be positive, got {rank}")

    order = tensor.ndim
    factors = [rng.normal(size=(dim, rank)) for dim in tensor.shape]
    lam = np.ones(rank)
    previous_error = np.inf
    norm_x = np.linalg.norm(tensor)

    for __ in range(iterations):
        for mode in range(order):
            # Khatri-Rao over the other factors in increasing mode order:
            # with C-order unfolding the later modes vary fastest, matching
            # the row layout produced by khatri_rao.
            kr = khatri_rao([factors[n] for n in range(order) if n != mode])
            gram = np.ones((rank, rank))
            for n in range(order):
                if n != mode:
                    gram *= factors[n].T @ factors[n]
            rhs = unfold(tensor, mode) @ kr
            try:
                solution = np.linalg.solve(gram + 1e-12 * np.eye(rank), rhs.T).T
            except np.linalg.LinAlgError as exc:
                raise DecompositionError(f"ALS normal equations singular: {exc}") from exc
            norms = np.linalg.norm(solution, axis=0)
            norms[norms == 0] = 1.0
            factors[mode] = solution / norms
            lam = norms
        if not all(np.isfinite(f).all() for f in factors):
            raise DecompositionError("ALS diverged to non-finite factors")
        approx = cp_to_tensor(CPTensor(lam, factors))
        error = np.linalg.norm(tensor - approx) / (norm_x + 1e-30)
        if abs(previous_error - error) < tol:
            break
        previous_error = error

    return CPTensor(lam=lam, factors=factors)
