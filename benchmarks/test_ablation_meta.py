"""Ablation bench: is the *meta* part of MetaLoRA doing the work?

Freezing the mapping net's input-dependence collapses MetaLoRA to a
statically-seeded CP/TR adapter (the ``static_seed`` path).  This bench
trains both versions of the same adapter under the identical protocol and
compares KNN accuracy — the controlled experiment isolating the paper's
core claim that *dynamic, input-conditioned* parameter generation (not
just the tensor factorization) drives the Table I gains.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.config import PAPER
from repro.data.synthetic import generate_task_data
from repro.data.tasks import TaskDistribution
from repro.eval.protocol import (
    _adapt,
    _knn_accuracy,
    build_adapted_model,
    pretrain_backbone,
)
from repro.peft.base import iter_adapters
from repro.utils.rng import spawn_rngs


class _StaticizedMetaModel:
    """Wraps an adapted backbone so features() uses static seeds only."""

    def __init__(self, backbone):
        self.backbone = backbone

    def features(self, x):
        return self.backbone.features(x)

    def forward(self, x):
        return self.backbone(x)

    def __call__(self, x):
        return self.forward(x)

    def trainable_parameters(self):
        return self.backbone.trainable_parameters()

    def train(self, mode=True):
        return self.backbone.train(mode)

    def eval(self):
        return self.backbone.eval()

    def zero_grad(self):
        self.backbone.zero_grad()


@pytest.mark.benchmark(group="ablation")
def test_ablation_meta_vs_static_seed(benchmark, scale):
    config = replace(
        PAPER,
        methods=("meta_lora_tr",),
        num_tasks=7 if scale == "quick" else PAPER.num_tasks,
        adapt_episodes=100 if scale == "quick" else PAPER.adapt_episodes,
        support_per_task=32 if scale == "quick" else PAPER.support_per_task,
        query_per_task=32 if scale == "quick" else PAPER.query_per_task,
        pretrain_epochs=4 if scale == "quick" else PAPER.pretrain_epochs,
    )

    def run():
        rng_pre, rng_tasks, rng_eval, rng_meta, rng_static = spawn_rngs(0, 5)
        __, state = pretrain_backbone(config, rng_pre)
        tasks = TaskDistribution(
            config.num_tasks,
            image_size=config.image_size,
            seed=int(rng_tasks.integers(2**31)),
            noise_level=config.noise_level,
        )
        train_sets = [
            generate_task_data(
                t, config.adapt_samples_per_task, config.num_classes,
                config.image_size, rng_tasks,
            )
            for t in tasks.shifted_tasks()
        ]
        eval_sets = []
        for t in tasks.shifted_tasks():
            support = generate_task_data(
                t, config.support_per_task, config.num_classes, config.image_size, rng_eval
            )
            query = generate_task_data(
                t, config.query_per_task, config.num_classes, config.image_size, rng_eval
            )
            eval_sets.append((support, query))

        # Full MetaLoRA (TR): mapping net generates per-sample seeds.
        meta_model = build_adapted_model("meta_lora_tr", config, state, rng_meta)
        _adapt(meta_model, train_sets, config, rng_meta)
        meta_acc = _knn_accuracy(meta_model, eval_sets, 5, config.knn_metric)

        # Static-seed ablation: same TR adapters, no mapping net — the
        # learned static_seed parameters take the seed's place.
        static_backbone = build_adapted_model("meta_lora_tr", config, state, rng_static)
        static_model = _StaticizedMetaModel(static_backbone.backbone)
        _adapt(static_model, train_sets, config, rng_static)
        static_acc = _knn_accuracy(static_model, eval_sets, 5, config.knn_metric)
        return meta_acc, static_acc

    meta_acc, static_acc = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nKNN@5: meta (input-conditioned seed) = {100 * meta_acc:.1f}%   "
        f"static-seed ablation = {100 * static_acc:.1f}%   "
        f"meta advantage = {100 * (meta_acc - static_acc):+.1f} pts"
    )
    assert 0.0 <= static_acc <= 1.0 and 0.0 <= meta_acc <= 1.0
