"""Adaptive rank selection for tensor decompositions.

The paper cites adaptive TR rank selection (Sedighin et al., 2021) as
part of the tensor-network toolbox.  This module implements the
error-budget strategy those methods share: given a relative target error
``ε``, each sequential SVD keeps the smallest rank whose discarded
singular values fit within the remaining error budget
(``δ = ε·‖X‖/√(N−1)`` per split, the TT-SVD bound), yielding per-bond
ranks instead of one global maximum.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DecompositionError, ShapeError
from repro.tensornet.tensor_ring import TRTensor
from repro.tensornet.tensor_train import TTTensor


def _rank_for_budget(singular_values: np.ndarray, budget: float) -> int:
    """Smallest rank whose tail energy is within ``budget`` (Frobenius)."""
    tail = np.cumsum(singular_values[::-1] ** 2)[::-1]
    within = np.flatnonzero(tail <= budget**2)
    if within.size:
        return max(int(within[0]), 1)
    return singular_values.shape[0]


def _sequential_svd_cores(
    tensor: np.ndarray, epsilon: float, max_rank: int | None
) -> list[np.ndarray]:
    shape = tensor.shape
    delta = epsilon * np.linalg.norm(tensor) / np.sqrt(max(len(shape) - 1, 1))
    cores: list[np.ndarray] = []
    remaining = tensor.reshape(shape[0], -1)
    left_rank = 1
    for k in range(len(shape) - 1):
        matrix = remaining.reshape(left_rank * shape[k], -1)
        try:
            u, s, vt = np.linalg.svd(matrix, full_matrices=False)
        except np.linalg.LinAlgError as exc:
            raise DecompositionError(f"SVD failed: {exc}") from exc
        rank = _rank_for_budget(s, delta)
        if max_rank is not None:
            rank = min(rank, max_rank)
        cores.append(u[:, :rank].reshape(left_rank, shape[k], rank))
        remaining = (s[:rank, None] * vt[:rank]).reshape(rank, -1)
        left_rank = rank
    cores.append(remaining.reshape(left_rank, shape[-1], 1))
    return cores


def tt_decompose_adaptive(
    tensor: np.ndarray, epsilon: float, max_rank: int | None = None
) -> TTTensor:
    """TT decomposition with per-bond ranks chosen from an error budget.

    Guarantees relative Frobenius error at most ``epsilon`` when
    ``max_rank`` does not bind (the standard TT-SVD bound).
    """
    if not 0.0 <= epsilon < 1.0:
        raise ShapeError(f"epsilon must be in [0, 1), got {epsilon}")
    if tensor.ndim < 2:
        raise ShapeError("adaptive decomposition needs order >= 2")
    return TTTensor(cores=_sequential_svd_cores(tensor, epsilon, max_rank))


def tr_decompose_adaptive(
    tensor: np.ndarray, epsilon: float, max_rank: int | None = None
) -> TRTensor:
    """Adaptive-rank TR decomposition (boundary ranks 1, TT ⊂ TR)."""
    tt = tt_decompose_adaptive(tensor, epsilon, max_rank)
    return TRTensor(cores=list(tt.cores))


def suggest_adapter_rank(
    weight: np.ndarray, epsilon: float, max_rank: int = 16
) -> int:
    """Suggest a LoRA-style rank for adapting ``weight``.

    Uses the spectrum of the weight matrix itself as a proxy for the
    update's effective dimensionality: the rank capturing all but an
    ``epsilon`` fraction of the spectral energy, clipped to ``max_rank``.
    A pragmatic default for choosing ``rank=`` per layer.
    """
    if weight.ndim != 2:
        weight = weight.reshape(-1, weight.shape[-1])
    singular_values = np.linalg.svd(weight, compute_uv=False)
    budget = epsilon * np.linalg.norm(singular_values)
    return min(_rank_for_budget(singular_values, budget), max_rank)
