"""The single-tenant embedding service, as a wrapper over the tenant core.

:class:`EmbeddingEngine` speaks the unified typed API —
``serve(ServeRequest(...))`` for synchronous work, ``enqueue(...)`` for
micro-batched singles, an LRU result cache, ``stats()`` in the unified
metrics-snapshot schema — as a thin single-tenant view over
:class:`~repro.serve.registry.MultiTenantEngine`: the program it is
handed is mounted as the sole registry entry (and as the core's
``default_adapter``, so requests may leave ``adapter`` unset) and every
call delegates.  Metric names are unchanged (bare ``serve.*`` series;
the wrapper turns tenant labels off), so existing dashboards and tests
read identically.

The pre-redesign calls — ``embed(images)`` and ``submit(sample)`` —
remain as shims that emit ``DeprecationWarning`` and delegate to the
typed path, bit-identically.  Engine caching lives on an explicit
:class:`Engines` handle (the old module-level ``shared_engine`` /
``clear_shared_engines`` pair is gone).
"""

from __future__ import annotations

import warnings
import weakref
from concurrent.futures import Future
from typing import Sequence

import numpy as np

from repro.errors import ServeError
from repro.nn.module import Module
from repro.serve.api import ServeRequest, ServeResult, ingest_sample
from repro.serve.compile import CompiledProgram, compile_features
from repro.serve.registry import MultiTenantEngine, _legacy_future

__all__ = [
    "EmbeddingEngine",
    "Engines",
    "ENGINES",
    "build_engine",
]


class EmbeddingEngine:
    """Serve embeddings from one compiled ``features()`` program.

    A single-tenant wrapper over :class:`MultiTenantEngine`: the program
    is registered under one internal name and all traffic routes to it.
    Output is bit-identical to serving the program directly — the core
    runs the same program on the same batches.

    Parameters
    ----------
    program:
        The compiled program (see :func:`build_engine` for the usual
        model → program path).
    max_batch:
        Largest micro-batch the worker will coalesce.
    max_delay:
        Seconds the worker waits after the first queued sample for more
        to arrive before flushing the batch.
    cache_size:
        LRU result-cache capacity in entries; ``0`` disables caching.
    drain_timeout:
        Seconds :meth:`close` waits for queued work before failing the
        remainder with typed errors (see the core engine).
    """

    _TENANT = "default"

    def __init__(
        self,
        program: CompiledProgram,
        *,
        max_batch: int = 32,
        max_delay: float = 0.002,
        cache_size: int = 256,
        drain_timeout: float = 10.0,
    ) -> None:
        self._core = MultiTenantEngine(
            max_batch=max_batch,
            max_delay=max_delay,
            cache_size=cache_size,
            tenant_labels=False,
            drain_timeout=drain_timeout,
        )
        self._core.registry.register_program(self._TENANT, program)
        self._core.default_adapter = self._TENANT
        self.program = program

    @property
    def precision(self) -> str:
        """The mounted program's precision tier (``f64``/``f32``/``int8``)."""
        return self.program.precision

    @property
    def max_batch(self) -> int:
        return self._core.max_batch

    @property
    def max_delay(self) -> float:
        return self._core.max_delay

    @property
    def cache_size(self) -> int:
        return self._core.cache_size

    def serve(
        self, requests: "ServeRequest | Sequence[ServeRequest]"
    ) -> "ServeResult | list[ServeResult]":
        """The canonical synchronous path (see the core engine's ``serve``).

        Requests may leave ``adapter`` unset — the wrapper's sole tenant
        is the core's default.  Batched (rank-4) samples each run
        standalone; chunk like ``extract_embeddings`` (``batch_size``
        slices) to stay bit-identical to the reference path.
        """
        return self._core.serve(requests)

    def enqueue(self, request: ServeRequest) -> "Future[ServeResult]":
        """Queue one single-sample request; resolves to a ``ServeResult``."""
        return self._core.enqueue(request)

    def embed(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Deprecated: wrap chunks in :class:`ServeRequest` and ``serve()``.

        Chunk boundaries match the reference path's, so the result is
        bit-identical to it.  Rows are freshly allocated, so callers may
        mutate the result freely.
        """
        warnings.warn(
            "EmbeddingEngine.embed() is deprecated; build batched "
            "ServeRequest objects and call serve()",
            DeprecationWarning,
            stacklevel=2,
        )
        images = ingest_sample(images)
        requests = [
            ServeRequest(sample=images[start : start + batch_size])
            for start in range(0, images.shape[0], batch_size)
        ]
        results = self._core.serve(requests)
        return np.concatenate([result.require() for result in results], axis=0)

    def submit(self, sample: np.ndarray) -> "Future[np.ndarray]":
        """Deprecated: ``enqueue(ServeRequest(sample))`` is the queue path now."""
        warnings.warn(
            "EmbeddingEngine.submit() is deprecated; use "
            "enqueue(ServeRequest(sample)) and read the ServeResult",
            DeprecationWarning,
            stacklevel=2,
        )
        return _legacy_future(self._core.enqueue(ServeRequest(sample=sample)))

    def stats(self) -> dict[str, dict]:
        """The engine's counters in the unified metrics-snapshot schema.

        Keys are the ``serve.*`` metric names; each value carries
        ``kind`` / ``calls`` / ``seconds`` / ``bytes`` plus ``buckets``
        for the batch-size histogram and ``value`` for the
        ``serve.cache.size`` occupancy gauge (set at snapshot time).
        See ``docs/observability.md``.
        """
        return self._core.stats()

    def close(self, drain_timeout: float | None = None) -> None:
        """Stop the worker and answer every pending request (see the core)."""
        self._core.close(drain_timeout=drain_timeout)

    def __enter__(self) -> "EmbeddingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def build_engine(
    model_or_result: object,
    *,
    merge: bool = True,
    max_batch: int = 32,
    max_delay: float = 0.002,
    cache_size: int = 256,
    precision: str | None = None,
) -> EmbeddingEngine:
    """Compile a model (or an ``AttachResult``) into a ready engine.

    Given an :class:`~repro.peft.api.AttachResult` holding static adapters,
    ``merge=True`` (default) bakes the adapter deltas into the base weights
    via ``AttachResult.merge()`` before compiling — the served program then
    contains no adapter ops at all.  Meta adapters cannot merge; they
    compile to their pre-planned einsum fast paths instead.  ``precision``
    picks the tier (explicit, else ``REPRO_SERVE_PRECISION``, else ``f64``).
    """
    model = model_or_result
    if not isinstance(model, Module):
        serving_model = getattr(model, "serving_model", None)
        if serving_model is None:
            raise ServeError(
                f"build_engine expects a Module or AttachResult, "
                f"got {type(model_or_result).__name__}"
            )
        if not callable(serving_model):
            raise ServeError(
                f"build_engine: {type(model_or_result).__name__}.serving_model is "
                f"{type(serving_model).__name__}, not callable"
            )
        model = serving_model(merge=merge)
        if not isinstance(model, Module):
            raise ServeError(
                f"build_engine: serving_model() on "
                f"{type(model_or_result).__name__} returned "
                f"{type(model).__name__}, not a Module"
            )
    program = compile_features(model, precision=precision)
    return EmbeddingEngine(
        program, max_batch=max_batch, max_delay=max_delay, cache_size=cache_size
    )


class Engines:
    """An explicit handle over per-model cached engines.

    One lazily-built :class:`EmbeddingEngine` per model, weakly keyed:
    dropping the model drops its engine.  Weights mutated after
    compilation are not picked up — :meth:`clear` (or dropping the
    model) forces recompilation.  A handle callers can own, scope and
    close, rather than module-level global state.
    """

    def __init__(
        self,
        *,
        cache_size: int = 0,
        max_batch: int = 32,
        max_delay: float = 0.002,
        precision: str | None = None,
    ) -> None:
        self._engines: "weakref.WeakKeyDictionary[Module, EmbeddingEngine]" = (
            weakref.WeakKeyDictionary()
        )
        self._build_kwargs = {
            "cache_size": cache_size,
            "max_batch": max_batch,
            "max_delay": max_delay,
            "precision": precision,
        }

    def get(self, model: Module) -> EmbeddingEngine:
        """The cached engine for ``model``, compiling on first use."""
        engine = self._engines.get(model)
        if engine is None:
            engine = self._engines[model] = build_engine(model, **self._build_kwargs)
        return engine

    def clear(self) -> None:
        """Drop every cached engine (forces recompilation on next use)."""
        for engine in list(self._engines.values()):
            engine.close()
        self._engines.clear()

    def __len__(self) -> int:
        return len(self._engines)

    def __contains__(self, model: Module) -> bool:
        return model in self._engines


#: Default handle for the flag-gated protocol path
#: (``FLAGS.serve_embeddings``); result caching off, as before.  The
#: tier is pinned to f64 — routing ``extract_embeddings`` through the
#: engine is contracted bit-identical to the autograd path, and must
#: stay so even when ``REPRO_SERVE_PRECISION`` relaxes serving tiers.
ENGINES = Engines(cache_size=0, precision="f64")
