"""Generalized tensor contraction (Eq. 1) and matricization.

``contract(A, B, modes_a, modes_b)`` implements the paper's
``A ×_{(n₁..n_S)}^{(m₁..m_S)} B``: the shared indices are summed, producing
a tensor of order ``N + M − 2S``.  ``mode_product`` is the special case of
contracting one tensor mode with the first mode of a matrix (the ``×ₖ¹``
used throughout Eqs. 3–6).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def contract(
    a: np.ndarray,
    b: np.ndarray,
    modes_a: tuple[int, ...] | int,
    modes_b: tuple[int, ...] | int,
) -> np.ndarray:
    """Contract ``a`` and ``b`` over paired modes (0-indexed).

    The result's axes are the free axes of ``a`` (in order) followed by the
    free axes of ``b``, matching :func:`numpy.tensordot` semantics.
    """
    if isinstance(modes_a, int):
        modes_a = (modes_a,)
    if isinstance(modes_b, int):
        modes_b = (modes_b,)
    if len(modes_a) != len(modes_b):
        raise ShapeError(
            f"contraction pairs {len(modes_a)} modes of A with {len(modes_b)} of B"
        )
    for ma, mb in zip(modes_a, modes_b):
        if not (-a.ndim <= ma < a.ndim) or not (-b.ndim <= mb < b.ndim):
            raise ShapeError(
                f"mode pair ({ma}, {mb}) out of range for orders "
                f"({a.ndim}, {b.ndim})"
            )
        if a.shape[ma] != b.shape[mb]:
            raise ShapeError(
                f"contracted dimensions differ: A mode {ma} has size "
                f"{a.shape[ma]}, B mode {mb} has size {b.shape[mb]}"
            )
    return np.tensordot(a, b, axes=(modes_a, modes_b))


def mode_product(tensor: np.ndarray, matrix: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``k`` product ``T ×ₖ M`` with ``M ∈ R^{I_k × J}``.

    Contracts tensor mode ``mode`` against the matrix's first axis; the
    matrix's second axis takes the contracted mode's place, preserving the
    mode order of the input tensor.
    """
    if matrix.ndim != 2:
        raise ShapeError(f"mode_product needs a matrix, got order {matrix.ndim}")
    if tensor.shape[mode] != matrix.shape[0]:
        raise ShapeError(
            f"tensor mode {mode} has size {tensor.shape[mode]}, "
            f"matrix first axis has size {matrix.shape[0]}"
        )
    moved = np.moveaxis(tensor, mode, -1)
    result = moved @ matrix
    return np.moveaxis(result, -1, mode)


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``k`` matricization: ``(I_k, prod of other dims)``.

    Follows the Kolda–Bader convention used by the ALS solver in
    :mod:`repro.tensornet.cp`.
    """
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def fold(matrix: np.ndarray, mode: int, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`unfold` for a tensor of the given full ``shape``."""
    if matrix.shape[0] != shape[mode]:
        raise ShapeError(
            f"matrix first axis {matrix.shape[0]} does not match "
            f"shape[{mode}] = {shape[mode]}"
        )
    moved_shape = (shape[mode],) + tuple(s for i, s in enumerate(shape) if i != mode)
    return np.moveaxis(matrix.reshape(moved_shape), 0, mode)


def khatri_rao(matrices: list[np.ndarray]) -> np.ndarray:
    """Column-wise Khatri–Rao product of factor matrices (ALS workhorse)."""
    if not matrices:
        raise ShapeError("khatri_rao of an empty list")
    rank = matrices[0].shape[1]
    for m in matrices:
        if m.ndim != 2 or m.shape[1] != rank:
            raise ShapeError("khatri_rao requires matrices with equal column count")
    result = matrices[0]
    for m in matrices[1:]:
        result = np.einsum("ir,jr->ijr", result, m).reshape(-1, rank)
    return result
