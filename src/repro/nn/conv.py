"""2-D convolution layer."""

from __future__ import annotations

import numpy as np

from repro.autograd.conv_ops import conv2d
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn import init
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """Convolution with weight layout ``(K, K, C_in, C_out)``.

    This matches the paper's convolutional tensor ``W ∈ R^{K×K×I×O}``
    (Sec. III-A), so Conv-LoRA's update ``ΔW = A ×₄ B`` adds to the weight
    without any axis shuffling.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ShapeError(f"kernel_size must be positive, got {kernel_size}")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform(
                rng, (kernel_size, kernel_size, in_channels, out_channels), fan_in
            )
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}->{self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )
