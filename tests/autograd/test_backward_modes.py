"""Gradient equivalence of the backward memory-diet modes.

``backward_inplace_accum`` (on by default) and ``backward_release``
(opt-in, enabled per-cell by the parallel runtime) must not change a
single bit of any gradient — they only change where the accumulation
buffer lives and when graph metadata is freed.  These tests compare the
diet paths against reference mode on graphs that fan out (a tensor used
twice is what makes gradients *accumulate* at all).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, relu
from repro.errors import GradientError
from repro.perf import perf_overrides, reference_mode


def _fanout_graph(rng):
    """A graph where ``x`` and ``w`` each receive several contributions."""
    x = Tensor(rng.normal(size=(5, 4)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.normal(size=(4, 3)).astype(np.float32), requires_grad=True)
    h = relu(x @ w)
    y = (h * h).sum() + (x.sum() * 0.5) + (h.sum() ** 2)
    return x, w, y


def _grads(rng, **flags):
    with perf_overrides(**flags):
        x, w, y = _fanout_graph(rng)
        y.backward()
    return x.grad.copy(), w.grad.copy()


class TestGradEquivalence:
    def test_inplace_accum_is_bit_identical_to_reference(self):
        ref = _grads(np.random.default_rng(7), backward_inplace_accum=False)
        fast = _grads(np.random.default_rng(7), backward_inplace_accum=True)
        assert np.array_equal(ref[0], fast[0])
        assert np.array_equal(ref[1], fast[1])

    def test_release_is_bit_identical_to_reference(self):
        ref = _grads(
            np.random.default_rng(7),
            backward_inplace_accum=False,
            backward_release=False,
        )
        diet = _grads(
            np.random.default_rng(7),
            backward_inplace_accum=True,
            backward_release=True,
        )
        assert np.array_equal(ref[0], diet[0])
        assert np.array_equal(ref[1], diet[1])

    def test_reference_mode_disables_both_flags(self):
        from repro.perf import FLAGS

        with reference_mode():
            assert FLAGS.backward_inplace_accum is False
            assert FLAGS.backward_release is False

    def test_inplace_never_writes_into_caller_arrays(self, rng):
        # The first contribution to a parent can alias an array the caller
        # owns (e.g. an identity grad_fn handing back `gradient` itself);
        # in-place accumulation must only ever hit sweep-owned buffers.
        x = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        y = x + 0.0
        z = y + 0.0
        seed_grad = np.ones((3, 3))
        before = seed_grad.copy()
        with perf_overrides(backward_inplace_accum=True):
            z.backward(seed_grad)
        assert np.array_equal(seed_grad, before)
        assert np.array_equal(x.grad, before)


class TestReleaseSemantics:
    def test_double_backward_raises_clear_error(self, rng):
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        y = (x * x).sum()
        with perf_overrides(backward_release=True):
            y.backward()
        first = x.grad.copy()
        with pytest.raises(GradientError, match="released"):
            y.backward()
        assert np.array_equal(x.grad, first)  # failed pass left grads alone

    def test_release_frees_graph_metadata_but_keeps_grads(self, rng):
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        h = x * 2.0
        y = h.sum()
        with perf_overrides(backward_release=True):
            y.backward()
        assert y._parents == () and y._grad_fns == ()
        assert h._parents == () and h._grad_fns == ()
        assert x.grad is not None

    def test_leaves_are_never_marked_released(self, rng):
        # A leaf has no graph to free; it must stay usable in new graphs.
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        with perf_overrides(backward_release=True):
            (x * 3.0).sum().backward()
        second = (x * 5.0).sum()
        second.backward()
        assert x.grad is not None

    def test_default_mode_still_allows_graph_reuse(self, rng):
        # backward_release defaults OFF precisely so existing double-backward
        # semantics (gradient accumulation over reused graphs) survive.
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        y = (x * x).sum()
        y.backward()
        once = x.grad.copy()
        y.backward()
        assert np.array_equal(x.grad, 2.0 * once)
