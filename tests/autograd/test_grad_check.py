"""Tests for the gradient checker itself (it must catch broken gradients)."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, tensor
from repro.autograd.tensor import unbroadcast
from repro.errors import GradientError


class TestCheckGradients:
    def test_passes_on_correct_gradient(self, rng):
        x = tensor(rng.normal(size=(3, 3)), requires_grad=True, dtype=np.float64)
        check_gradients(lambda x: x * x, [x])

    def test_fails_on_wrong_gradient(self, rng):
        x = tensor(rng.normal(size=(2, 2)), requires_grad=True, dtype=np.float64)

        def broken(t: Tensor) -> Tensor:
            # Correct value, doubled gradient.
            return Tensor._result(t.data.copy(), (t,), (lambda g: 2.0 * g,))

        with pytest.raises(GradientError, match="mismatch"):
            check_gradients(broken, [x])

    def test_fails_when_gradient_missing(self, rng):
        x = tensor(rng.normal(size=(2,)), requires_grad=True, dtype=np.float64)
        y = tensor(rng.normal(size=(2,)), requires_grad=True, dtype=np.float64)
        # y never participates, so it gets no gradient.
        with pytest.raises(GradientError, match="no gradient"):
            check_gradients(lambda x, y: x * 2, [x, y])

    def test_skips_non_grad_inputs(self, rng):
        x = tensor(rng.normal(size=(2,)), requires_grad=True, dtype=np.float64)
        const = tensor(rng.normal(size=(2,)), dtype=np.float64)
        check_gradients(lambda x, c: x * c, [x, const])
