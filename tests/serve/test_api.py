"""The unified ServeRequest/ServeResult surface and its shims.

Pins the api_redesign contract: one typed request/response pair for the
sync, queued and wire paths; the deprecated ``embed``/``submit``/
``dispatch`` forms warn and stay bit-identical; serving failures are
typed results, never hangs.
"""

import threading
import time
import warnings

import numpy as np
import pytest

from repro.errors import ServeError
from repro.models import resnet_small
from repro.serve import (
    DEADLINE_MISSED,
    ERROR,
    OK,
    REJECTED,
    STATUSES,
    MultiTenantEngine,
    ServeRequest,
    ServeResult,
    Timings,
    build_engine,
    ingest_sample,
)
from repro.utils.rng import new_rng
from tests.serve.conftest import serve_bulk


def images_for(rng, n=4):
    return rng.normal(size=(n, 3, 16, 16)).astype(np.float32)


@pytest.fixture
def engine(rng):
    with build_engine(resnet_small(4, rng), cache_size=0) as engine:
        yield engine


class TestServeRequest:
    def test_single_and_batched_samples(self, rng):
        single = ServeRequest(sample=images_for(rng, 1)[0])
        batch = ServeRequest(sample=images_for(rng, 2))
        assert not single.batched and batch.batched

    def test_bad_rank_rejected(self):
        for shape in ((16, 16), (1, 1, 3, 16, 16)):
            with pytest.raises(ServeError, match="shape"):
                ServeRequest(sample=np.zeros(shape, dtype=np.float32))

    def test_non_float_samples_ingested_as_float32(self):
        request = ServeRequest(sample=np.zeros((3, 16, 16), dtype=np.int64))
        assert request.sample.dtype == np.float32
        assert ingest_sample([[[1]]]).dtype == np.float32

    def test_deadline_validation_and_expiry(self, rng):
        sample = images_for(rng, 1)[0]
        with pytest.raises(ServeError, match="deadline"):
            ServeRequest(sample=sample, deadline=0.0)
        no_slo = ServeRequest(sample=sample)
        assert no_slo.deadline_at() == float("inf") and not no_slo.expired()
        request = ServeRequest(sample=sample, deadline=1e-4)
        assert request.deadline_at() == request.created_at + 1e-4
        time.sleep(0.01)
        assert request.expired()
        # expired() also accepts an explicit clock for batch-formation use.
        assert not request.expired(now=request.created_at)


class TestServeResult:
    def test_require_returns_embedding(self):
        row = np.ones(3, dtype=np.float32)
        assert ServeResult(embedding=row).require() is row

    def test_require_raises_typed_error_on_failure(self):
        for status in (REJECTED, DEADLINE_MISSED, ERROR):
            result = ServeResult.failure(status, "nope")
            assert not result.ok and result.status in STATUSES
            with pytest.raises(ServeError, match=status):
                result.require()

    def test_unknown_status_rejected(self):
        with pytest.raises(ServeError, match="status"):
            ServeResult(status="maybe")

    def test_timings_round_trip(self):
        timings = Timings(queue_seconds=0.1, run_seconds=0.2, total_seconds=0.3)
        assert Timings.from_dict(timings.as_dict()) == timings
        assert Timings.from_dict({}) == Timings()


class TestDeadlineSemantics:
    def test_sync_serve_answers_expired_requests_without_running(self, engine, rng):
        request = ServeRequest(sample=images_for(rng, 1)[0], deadline=1e-6)
        time.sleep(0.01)
        result = engine.serve(request)
        assert result.status == DEADLINE_MISSED
        assert result.embedding is None and "SLO" in result.error
        assert engine.stats()["serve.request.deadline_missed"]["calls"] == 1

    def test_queue_path_answers_expired_requests(self, engine, rng):
        request = ServeRequest(sample=images_for(rng, 1)[0], deadline=1e-6)
        time.sleep(0.01)
        result = engine.enqueue(request).result(timeout=10.0)
        assert result.status == DEADLINE_MISSED
        assert engine.stats()["serve.request.deadline_missed"]["calls"] == 1

    def test_generous_deadline_serves_normally(self, engine, rng):
        result = engine.serve(
            ServeRequest(sample=images_for(rng, 1)[0], deadline=60.0)
        )
        assert result.ok and result.require().ndim == 1


class TestStatsSeries:
    def test_new_series_present_at_zero(self, engine):
        stats = engine.stats()
        assert stats["serve.request.rejected"]["calls"] == 0
        assert stats["serve.request.deadline_missed"]["calls"] == 0
        assert stats["serve.queue.depth"]["kind"] == "histogram"


class TestCloseSemantics:
    def test_close_with_stalled_worker_fails_futures_not_hangs(self, rng):
        """The close() hang fix: a wedged batch can't block shutdown."""
        engine = build_engine(
            resnet_small(4, rng), cache_size=0, max_delay=0.01
        )
        release = threading.Event()
        original = engine._core._run_entry

        def stalled(entry, batch):
            release.wait(timeout=30.0)
            return original(entry, batch)

        engine._core._run_entry = stalled
        futures = [
            engine.enqueue(ServeRequest(sample=sample))
            for sample in images_for(rng, 3)
        ]
        time.sleep(0.05)  # let the worker pick up (and stall on) a batch
        started = time.perf_counter()
        engine.close(drain_timeout=0.2)
        assert time.perf_counter() - started < 5.0  # no hang
        release.set()
        for future in futures:
            result = future.result(timeout=10.0)
            # Served before the stall, or failed with a typed error —
            # never an exception on the future, never a hang.
            assert isinstance(result, ServeResult)
            if not result.ok:
                assert result.status == ERROR

    def test_drain_timeout_knob_validated(self, rng):
        with pytest.raises(ServeError, match="drain_timeout"):
            MultiTenantEngine(drain_timeout=-0.5)


class TestDeprecatedShims:
    def test_embed_warns_and_matches_serve(self, engine, rng):
        images = images_for(rng, 5)
        expected = serve_bulk(engine, images, batch_size=2)
        with pytest.warns(DeprecationWarning, match="embed"):
            out = engine.embed(images, batch_size=2)
        assert np.array_equal(out, expected)

    def test_submit_warns_and_matches_enqueue(self, engine, rng):
        sample = images_for(rng, 1)[0]
        expected = engine.enqueue(
            ServeRequest(sample=sample)
        ).result(timeout=10.0).require()
        with pytest.warns(DeprecationWarning, match="submit"):
            future = engine.submit(sample)
        assert np.array_equal(future.result(timeout=10.0), expected)

    def test_submit_future_raises_like_before(self, rng):
        """The legacy future carries failures as exceptions, not results."""
        engine = build_engine(resnet_small(4, rng), cache_size=0)
        with pytest.warns(DeprecationWarning):
            future = engine.submit(images_for(rng, 1)[0])
        future.result(timeout=10.0)  # serves fine
        request = ServeRequest(sample=images_for(rng, 1)[0], deadline=1e-6)
        time.sleep(0.01)
        from repro.serve.registry import _legacy_future

        legacy = _legacy_future(engine.enqueue(request))
        with pytest.raises(ServeError, match="deadline_missed"):
            legacy.result(timeout=10.0)
        engine.close()

    def test_multi_tenant_shims_warn_and_match(self, rng):
        model = resnet_small(4, rng)
        images = images_for(rng, 4)
        engine = MultiTenantEngine(cache_size=0, max_delay=0.1)
        engine.register("a", model)
        try:
            expected = serve_bulk(engine, images, adapter="a")
            with pytest.warns(DeprecationWarning, match="embed"):
                assert np.array_equal(engine.embed(images, "a"), expected)
            with pytest.warns(DeprecationWarning, match="dispatch"):
                rows = engine.dispatch([("a", sample) for sample in images])
            direct = engine.serve(
                [ServeRequest(sample=sample, adapter="a") for sample in images]
            )
            for row, result in zip(rows, direct):
                assert np.array_equal(row, result.require())
            with pytest.warns(DeprecationWarning, match="submit"):
                future = engine.submit(images[0], "a")
            assert future.result(timeout=10.0).ndim == 1
        finally:
            engine.close()

    def test_serve_rejects_non_requests(self, engine):
        with pytest.raises(ServeError, match="ServeRequest"):
            engine.serve([np.zeros((3, 16, 16), dtype=np.float32)])
        with pytest.raises(ServeError, match="ServeRequest"):
            engine.enqueue(np.zeros((3, 16, 16), dtype=np.float32))

    def test_enqueue_rejects_batched_samples(self, engine, rng):
        with pytest.raises(ServeError, match="single-sample"):
            engine.enqueue(ServeRequest(sample=images_for(rng, 2)))


class TestStatusConstant:
    def test_ok_constant_and_statuses(self):
        assert OK == "ok" and len(STATUSES) == 4
