"""Shared utilities: seeded RNG, registries, serialization, timing, profiling."""

from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.registry import Registry
from repro.utils.serialization import (
    ARTIFACT_VERSION,
    load_arrays,
    load_artifact,
    read_manifest,
    save_arrays,
    save_artifact,
)
from repro.utils.timing import Timer, time_calls
from repro.utils.profiling import PROFILER, OpStats, Profiler, profiled
from repro.utils.logging import enable_console_logging, get_logger

__all__ = [
    "ARTIFACT_VERSION",
    "OpStats",
    "PROFILER",
    "Profiler",
    "Registry",
    "RngMixin",
    "Timer",
    "enable_console_logging",
    "get_logger",
    "load_arrays",
    "load_artifact",
    "new_rng",
    "profiled",
    "read_manifest",
    "save_arrays",
    "save_artifact",
    "spawn_rngs",
    "time_calls",
]
