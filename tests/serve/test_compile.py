"""Compiled-program bit-exactness against the autograd reference path.

The contract under test is exact equality (``max_abs_diff == 0.0``), not
closeness: the compiled kernels are the same functions the autograd ops
call, with scalar constants coerced exactly as ``Tensor`` arithmetic
coerces them.  That contract is pinned to the f64 tier; when the suite
runs under ``REPRO_SERVE_PRECISION=f32``/``int8`` the same tests assert
tier-sized closeness instead (see conftest's ``assert_serving_match``).
"""

import numpy as np
import pytest

from repro.errors import ServeError
from repro.eval.embeddings import extract_embeddings
from repro.models import FeatureExtractor, mixer_small, resnet_small
from repro.peft import MetaLoRAModel, attach
from repro.perf import perf_overrides
from repro.serve import build_engine, compile_features

BACKBONES = {
    "resnet": lambda rng: resnet_small(4, rng),
    "mixer": lambda rng: mixer_small(4, rng),
}

#: Every adapter family the compiler has a fast path for.
ADAPTER_METHODS = ("lora", "multi_lora", "meta_cp", "meta_tr")


def images_for(rng, n=5):
    return rng.normal(size=(n, 3, 16, 16)).astype(np.float32)


def randomize_zero_params(model, rng):
    """Adapter B-side factors start at zero (identity adapters); give them
    real values so exactness failures cannot hide behind a zero delta."""
    for param in model.parameters():
        if not np.any(param.data):
            param.data[...] = (rng.normal(size=param.data.shape) * 0.2).astype(
                param.data.dtype
            )


def assert_bit_identical(model, images):
    from tests.serve.conftest import assert_serving_match

    program = compile_features(model)
    reference = extract_embeddings(model, images, batch_size=images.shape[0])
    assert_serving_match(program.run(images), reference)


class TestBackboneExactness:
    @pytest.mark.parametrize("backbone", sorted(BACKBONES))
    def test_plain_backbone(self, backbone, rng):
        model = BACKBONES[backbone](rng)
        assert_bit_identical(model, images_for(rng))

    @pytest.mark.parametrize("backbone", sorted(BACKBONES))
    @pytest.mark.parametrize("method", ADAPTER_METHODS)
    def test_adapted_backbone(self, backbone, method, rng):
        model = BACKBONES[backbone](rng)
        attach(model, method, rank=2, rng=rng)
        randomize_zero_params(model, rng)
        assert_bit_identical(model, images_for(rng))

    def test_batch_polymorphic_program(self, rng):
        from tests.serve.conftest import assert_serving_match

        model = resnet_small(4, rng)
        program = compile_features(model)
        for n in (1, 3, 7):
            x = images_for(rng, n)
            assert_serving_match(program.run(x), extract_embeddings(model, x))


class TestMetaModelExactness:
    @pytest.mark.parametrize("backbone", sorted(BACKBONES))
    @pytest.mark.parametrize("fmt", ("cp", "tr"))
    def test_meta_model(self, backbone, fmt, rng):
        base = BACKBONES[backbone](rng)
        result = attach(base, f"meta_{fmt}", rank=2, rng=rng)
        extractor = FeatureExtractor(resnet_small(4, np.random.default_rng(9)))
        model = MetaLoRAModel(base, extractor, rng=rng, adapters=result)
        randomize_zero_params(model, rng)
        assert_bit_identical(model, images_for(rng))

    def test_meta_model_per_head_seed_path(self, rng):
        # batched_seeds=False freezes the per-head lowering at compile time;
        # it must match the reference running under the same flag.
        base = resnet_small(4, rng)
        result = attach(base, "meta_tr", rank=2, rng=rng)
        extractor = FeatureExtractor(resnet_small(4, np.random.default_rng(9)))
        model = MetaLoRAModel(base, extractor, rng=rng, adapters=result)
        randomize_zero_params(model, rng)
        with perf_overrides(batched_seeds=False):
            assert_bit_identical(model, images_for(rng))


class TestMergedFastPath:
    def test_merge_then_compile_matches_merged_reference(self, rng):
        model = resnet_small(4, rng)
        result = attach(model, "lora", rank=2, rng=rng)
        randomize_zero_params(model, rng)
        images = images_for(rng)
        engine = build_engine(result)
        assert result.state == "merged"
        # The program was compiled from the merged model: no adapter steps.
        assert not any("lora" in line for line in engine.program.describe())
        from tests.serve.conftest import assert_serving_match, serve_bulk

        assert_serving_match(
            serve_bulk(engine, images), extract_embeddings(result.model, images)
        )
        engine.close()

    def test_meta_adapters_compile_unmerged(self, rng):
        model = resnet_small(4, rng)
        result = attach(model, "meta_tr", rank=2, rng=rng)
        engine = build_engine(result)
        assert result.state == "attached"  # meta adapters cannot merge
        assert any("meta_tr" in line for line in engine.program.describe())
        engine.close()


class TestCompilerErrors:
    def test_unsupported_adapter_raises(self, rng):
        from repro.nn import Linear

        model = mixer_small(4, rng)
        attach(model, "dora", rank=2, targets=(Linear,), rng=rng)
        with pytest.raises(ServeError, match="no serve lowering rule"):
            compile_features(model)

    def test_model_without_rule_raises(self):
        from repro.nn import Linear

        with pytest.raises(ServeError, match="features"):
            compile_features(Linear(4, 4))


class TestProgramStructure:
    def test_describe_and_len(self, rng):
        program = compile_features(resnet_small(4, rng))
        lines = program.describe()
        assert len(lines) == len(program) > 0
        assert lines[0].startswith("0: %")

    def test_compile_restores_training_mode(self, rng):
        model = resnet_small(4, rng)
        model.train()
        compile_features(model)
        assert model.training

    def test_snapshot_semantics(self, rng):
        # Constants fold at compile time; mutations need a recompile.
        model = resnet_small(4, rng)
        x = images_for(rng, 2)
        program = compile_features(model)
        before = program.run(x)
        model.stem.weight.data[...] += 1.0
        assert np.array_equal(program.run(x), before)
        assert not np.array_equal(compile_features(model).run(x), before)
