"""Parameter-space mapping net (Sec. III-B.2).

An MLP that maps extracted input features into the parameter seed used by
the tensor integration formats: the vector ``c ∈ R^R`` for MetaLoRA (CP)
or the matrix ``C ∈ R^{R×R}`` for MetaLoRA (TR).  The output passes
through tanh and a learned scale, keeping seeds bounded so the generated
ΔW cannot blow up early in training.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.errors import ConfigError
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList, Parameter


class MappingNet(Module):
    """MLP: features → hidden layers (ReLU) → tanh-bounded seed vector.

    ``output_dim`` is the flattened seed size (``R`` for CP, ``R²`` for
    TR); callers reshape.  The final layer is zero-initialized with bias
    1, so at initialization every sample receives the same neutral seed —
    meta adaptation then *grows* out of a LoRA-like starting point.
    """

    def __init__(
        self,
        feature_dim: int,
        output_dim: int,
        hidden_dims: tuple[int, ...] = (32,),
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if feature_dim <= 0 or output_dim <= 0:
            raise ConfigError(
                f"mapping net dims must be positive, got ({feature_dim}, {output_dim})"
            )
        rng = rng or np.random.default_rng()
        self.feature_dim = feature_dim
        self.output_dim = output_dim
        dims = (feature_dim,) + tuple(hidden_dims)
        self.hidden = ModuleList(
            [Linear(dims[i], dims[i + 1], rng=rng) for i in range(len(dims) - 1)]
        )
        self.out = Linear(dims[-1], output_dim, rng=rng)
        # Neutral start: every input maps to the constant seed tanh(1)·scale.
        self.out.weight.data[...] = 0.0
        self.out.bias.data[...] = 1.0
        self.scale = Parameter(init.ones((1,)))

    def forward(self, features: Tensor) -> Tensor:
        h = features
        for layer in self.hidden:
            h = ops.relu(layer(h))
        return ops.tanh(self.out(h)) * self.scale
