"""Quickstart: attach MetaLoRA to a backbone and adapt it in ~30 seconds.

Walks the full public API surface:

1. build + pretrain a small ResNet on the base task,
2. inject MetaLoRA (TR) adapters (the paper's best variant, Eq. 7),
3. wrap it with the feature extractor + mapping net (Fig. 4),
4. train only the adapters on a mixture of shifted tasks,
5. evaluate with the paper's KNN protocol,
6. show the parameter budget (the whole point of PEFT).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.data import TaskDistribution, generate_task_data
from repro.eval import KNNClassifier, extract_embeddings
from repro.models import FeatureExtractor, resnet_small
from repro.peft import (
    MetaLoRAModel,
    adapter_parameter_table,
    attach,
    count_parameters,
)
from repro.peft.counts import format_table
from repro.train import Adam, MetaTrainer, Trainer
from repro.utils.rng import spawn_rngs

NUM_CLASSES = 8
IMAGE_SIZE = 16
RANK = 2


def main() -> None:
    rng_pretrain, rng_adapt, rng_data = spawn_rngs(seed=0, count=3)

    # -- 1. pretrain a backbone on the base task --------------------------
    tasks = TaskDistribution(num_tasks=6, image_size=IMAGE_SIZE, seed=0)
    base_data = generate_task_data(tasks.base_task, 512, NUM_CLASSES, IMAGE_SIZE, rng_data)
    backbone = resnet_small(NUM_CLASSES, rng_pretrain)
    print("pretraining backbone on the base task ...")
    Trainer(backbone, Adam(backbone.parameters(), lr=3e-3)).fit(
        base_data.images, base_data.labels, epochs=4, batch_size=32, rng=rng_pretrain
    )

    # A frozen copy of the same backbone provides the meta features.
    extractor_backbone = resnet_small(NUM_CLASSES, rng_pretrain)
    extractor_backbone.load_state_dict(backbone.state_dict())
    extractor = FeatureExtractor(extractor_backbone)

    # -- 2. attach MetaLoRA (TR) adapters ---------------------------------
    result = attach(backbone, "meta_tr", rank=RANK, rng=rng_adapt)

    # -- 3. wrap with the mapping net (Fig. 4) -----------------------------
    model = MetaLoRAModel(backbone, extractor, rng=rng_adapt, adapters=result)

    counts = count_parameters(model)
    print(
        f"\nparameters: total={counts.total:,}  trainable={counts.trainable:,} "
        f"({100 * counts.trainable_fraction:.1f}% of the model)"
    )
    print("\nper-layer adapter budget:")
    print(format_table(adapter_parameter_table(backbone)))

    # -- 4. adapt on shifted tasks -----------------------------------------
    shifted = [
        generate_task_data(task, 64, NUM_CLASSES, IMAGE_SIZE, rng_data)
        for task in tasks.shifted_tasks()
    ]
    print("\nadapting on the shifted-task mixture ...")
    trainer = Trainer(model, Adam(list(model.trainable_parameters()), lr=3e-3))
    MetaTrainer(trainer, shifted).run(episodes=60, batch_size=16, rng=rng_adapt)
    model.eval()

    # -- 5. evaluate with the KNN protocol (Table I) ------------------------
    print("\nKNN accuracy per shifted task (K=5):")
    for task in tasks.shifted_tasks():
        support = generate_task_data(task, 40, NUM_CLASSES, IMAGE_SIZE, rng_data)
        query = generate_task_data(task, 40, NUM_CLASSES, IMAGE_SIZE, rng_data)
        knn = KNNClassifier().fit(
            extract_embeddings(model, support.images), support.labels
        )
        acc = knn.score(extract_embeddings(model, query.images), query.labels, k=5)
        print(f"  task {task.task_id}: {100 * acc:5.1f}%")


if __name__ == "__main__":
    main()
