"""Horizontal scale-out serving (``repro.serve.shard``).

:class:`ShardedEngine` spreads the serving stack across N worker
*processes* — each shard hosts its own
:class:`~repro.serve.registry.MultiTenantEngine` behind its own
:class:`~repro.serve.scheduler.BatchScheduler`, so compiled-kernel work
escapes the parent's GIL entirely.  The parent keeps only a router and
the replicated registry state:

- **Registry replication.**  ``register``/``swap``/``evict`` fan out to
  every shard.  A tenant is shipped as a :class:`TenantSpec` — an
  importable builder path that reconstructs the *architecture* plus the
  full ``state_dict`` bytes — and each shard verifies the loaded
  weights against the parent's ``state_digest`` before serving them, so
  a hot swap either propagates everywhere bit-exactly or fails loudly.

- **Affinity-first routing.**  Each adapter has a home shard (assigned
  round-robin at registration), keeping that shard's ``ProgramCache``
  and per-adapter cost-model EMA warm.  When the home shard's in-flight
  count exceeds the least-loaded shard's by ``spill_margin``, the
  request spills to the least-loaded shard instead
  (``serve.router.affinity`` / ``serve.router.spill`` count the split).

- **Crash isolation + restart.**  Shard death (detected by the link
  reader at EOF or the heartbeat monitor via ``is_alive``) resolves
  every in-flight request for that shard with a typed ``error``
  :class:`~repro.serve.api.ServeResult` — the PR 8 contract: failures
  are results, never hangs.  The monitor then respawns the worker and
  replays the recorded :class:`TenantSpec` sequence, so the shard
  re-syncs from the registry and its tenants serve again, bit-identical.

- **Obs merge-back.**  Each shard keeps its own metrics/trace registry
  (the :mod:`repro.runtime.pool` pattern for long-lived workers);
  :meth:`ShardedEngine.stats` pulls per-shard snapshots and merges them
  into one unified snapshot — bare series summed across shards plus a
  ``{shard=i}`` labeled twin per series — and absorbs shipped spans
  tagged ``shard=i`` via
  :func:`repro.runtime.pool.merge_worker_obs`.

IPC is the serving wire format itself — the ``u32_be|JSON|npy`` frame
codec from :mod:`repro.serve.codec` over loopback TCP sockets (workers
connect *back* to the parent listener, so no descriptors are inherited
and the ``spawn`` start method works unchanged).  Multi-array control
payloads (state dicts, recorded batches) use ``encode_arrays``.

The engine duck-types the scheduler surface (``submit`` / ``stats`` /
``close`` / ``depth``), so it mounts behind the unchanged
:class:`~repro.serve.frontend.ServingFrontend` via
``ServingFrontend(scheduler=sharded_engine)`` — which is what
``repro serve --shards N`` does.
"""

from __future__ import annotations

import importlib
import multiprocessing
import socket
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry, parse_name, render_name
from repro.obs.trace import TRACER
from repro.runtime.pool import merge_worker_obs, resolve_start_method
from repro.serve.api import (
    DEADLINE_MISSED,
    ERROR,
    OK,
    REJECTED,
    ServeRequest,
    ServeResult,
    Timings,
)
from repro.serve.codec import (
    decode_arrays,
    decode_payload,
    encode_arrays,
    encode_frame,
    encode_payload,
    read_frame_sync,
)

__all__ = ["ShardedEngine", "TenantSpec"]

#: How long a freshly spawned worker gets to connect back and say hello.
CONNECT_TIMEOUT = 30.0

#: Default control-op round-trip budget (register/stats/recorded/close).
CONTROL_TIMEOUT = 60.0


def _builder_path(builder: object) -> str:
    """``module:qualname`` for an importable tenant builder."""
    module = getattr(builder, "__module__", None)
    qualname = getattr(builder, "__qualname__", None)
    if not module or not qualname or "<" in qualname or "." in qualname:
        raise ServeError(
            f"tenant builder must be a module-level callable (got {builder!r}); "
            f"shards import it by path to rebuild the architecture"
        )
    resolved = _resolve_builder(f"{module}:{qualname}")
    if resolved is not builder:
        raise ServeError(
            f"tenant builder {module}:{qualname} does not import back to "
            f"itself; use a plain module-level function"
        )
    return f"{module}:{qualname}"


def _resolve_builder(path: str) -> object:
    module, __, qualname = path.partition(":")
    try:
        target = getattr(importlib.import_module(module), qualname)
    except (ImportError, AttributeError) as exc:
        raise ServeError(f"cannot import tenant builder {path!r}: {exc}") from exc
    if not callable(target):
        raise ServeError(f"tenant builder {path!r} is not callable")
    return target


def _serving_module(model_or_result: object, merge: bool) -> object:
    """The concrete Module whose state is replicated (mirrors the registry)."""
    from repro.nn.module import Module

    if isinstance(model_or_result, Module):
        return model_or_result
    serving_model = getattr(model_or_result, "serving_model", None)
    if serving_model is None or not callable(serving_model):
        raise ServeError(
            f"register() expects a Module or AttachResult, "
            f"got {type(model_or_result).__name__}"
        )
    module = serving_model(merge=merge)
    if not isinstance(module, Module):
        raise ServeError(
            f"serving_model() on {type(model_or_result).__name__} returned "
            f"{type(module).__name__}, not a Module"
        )
    return module


@dataclass
class TenantSpec:
    """Everything a shard needs to (re)construct one tenant.

    ``builder`` is an importable ``module:qualname`` path whose call
    (with ``args``/``kwargs``, JSON-able) rebuilds the tenant's
    *architecture*; ``state`` carries the authoritative weights and
    ``digest`` their :func:`~repro.peft.checkpoint.state_digest`
    identity, verified shard-side after loading.
    """

    name: str
    builder: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    merge: bool = True
    precision: str | None = None
    state: dict[str, np.ndarray] = field(default_factory=dict)
    digest: str = ""
    version: int = 1


# -- the worker process -------------------------------------------------------


def _shard_worker_main(shard_id: int, host: str, port: int, token: str, config: dict) -> None:
    """One shard: engine + scheduler behind a framed control socket.

    Module-level (and fed only picklable arguments) so it starts under
    ``spawn`` as well as ``fork``.  The worker connects *back* to the
    parent's listener, authenticates with ``token``, then serves ops
    until ``close`` or EOF.
    """
    from repro.obs import TRACER
    from repro.peft.checkpoint import state_digest
    from repro.serve.registry import MultiTenantEngine
    from repro.serve.scheduler import BatchScheduler

    TRACER.reset()
    TRACER.enable()

    conn = socket.create_connection((host, port), timeout=CONNECT_TIMEOUT)
    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    conn.settimeout(None)
    write_lock = threading.Lock()

    def send(header: dict, payload: bytes = b"") -> None:
        with write_lock:
            conn.sendall(encode_frame(header, payload))

    engine = MultiTenantEngine(
        cache_size=int(config.get("cache_size", 0)),
        max_batch=int(config.get("max_batch", 32)),
        precision=config.get("precision"),
        drain_timeout=float(config.get("drain_timeout", 10.0)),
    )
    scheduler = BatchScheduler(
        engine,
        queue_limit=int(config.get("queue_limit", 256)),
        max_batch=int(config.get("scheduler_max_batch") or config.get("max_batch", 32)),
        target_batch_seconds=float(config.get("target_batch_seconds", 0.025)),
        record_batches=int(config.get("record_batches", 0)),
    )

    send({"op": "hello", "shard": shard_id, "token": token})

    def on_serve_done(request_id: int, future: "Future[ServeResult]") -> None:
        result = future.result()
        try:
            send(
                {
                    "id": request_id,
                    "status": result.status,
                    "error": result.error,
                    "timings": result.timings.as_dict(),
                },
                encode_payload(result.embedding),
            )
        except OSError:
            pass  # parent gone; the process is about to be reaped anyway

    def handle_register(header: dict, payload: bytes) -> tuple[dict, bytes]:
        state = decode_arrays(payload)
        built = _resolve_builder(header["builder"])(
            *header.get("args", ()), **(header.get("kwargs") or {})
        )
        module = _serving_module(built, bool(header.get("merge", True)))
        module.load_state_dict(state)
        loaded = state_digest(module.state_dict())
        expected = header.get("digest")
        if expected and loaded != expected:
            raise ServeError(
                f"shard {shard_id}: tenant {header['name']!r} state digest "
                f"mismatch after load ({loaded[:12]} != {expected[:12]})"
            )
        engine.register(
            header["name"],
            module,
            replace=True,
            precision=header.get("precision"),
        )
        return {"digest": loaded}, b""

    def handle_recorded() -> tuple[dict, bytes]:
        batches = []
        arrays: dict[str, np.ndarray] = {}
        for b, (requests, results) in enumerate(list(scheduler.recorded)):
            batches.append(
                {
                    "adapters": [request.adapter for request in requests],
                    "statuses": [result.status for result in results],
                }
            )
            for i, (request, result) in enumerate(zip(requests, results)):
                arrays[f"{b}.{i}.sample"] = request.sample
                if result.embedding is not None:
                    arrays[f"{b}.{i}.embedding"] = result.embedding
        return {"batches": batches}, encode_arrays(arrays)

    closing = False
    try:
        while not closing:
            try:
                header, payload = read_frame_sync(conn)
            except ServeError:
                break  # parent went away; shut down
            op = header.get("op")
            request_id = header.get("id")
            try:
                if op == "serve":
                    sample = decode_payload(payload)
                    try:
                        request = ServeRequest(
                            sample=sample,
                            adapter=header.get("adapter"),
                            deadline=header.get("deadline"),
                            priority=int(header.get("priority", 0)),
                        )
                    except ServeError as exc:
                        send({"id": request_id, "status": ERROR, "error": str(exc)})
                        continue
                    future = scheduler.submit(request)
                    future.add_done_callback(
                        lambda done, rid=request_id: on_serve_done(rid, done)
                    )
                elif op == "ping":
                    send({"id": request_id, "status": OK})
                elif op == "stats":
                    send(
                        {
                            "id": request_id,
                            "status": OK,
                            "stats": scheduler.stats(),
                            "spans": TRACER.drain(),
                        }
                    )
                elif op == "register":
                    reply, blob = handle_register(header, payload)
                    send({"id": request_id, "status": OK, **reply}, blob)
                elif op == "evict":
                    engine.evict(header["name"])
                    send({"id": request_id, "status": OK})
                elif op == "recorded":
                    reply, blob = handle_recorded()
                    send({"id": request_id, "status": OK, **reply}, blob)
                elif op == "close":
                    closing = True
                    scheduler.close(header.get("drain"))
                    engine.close(0.0)
                    send(
                        {
                            "id": request_id,
                            "status": OK,
                            "stats": scheduler.stats(),
                            "spans": TRACER.drain(),
                        }
                    )
                else:
                    send(
                        {
                            "id": request_id,
                            "status": ERROR,
                            "error": f"unknown shard op {op!r}",
                        }
                    )
            except Exception as exc:  # control-op failure: typed reply, keep serving
                send({"id": request_id, "status": ERROR, "error": str(exc)})
    finally:
        if not closing:
            scheduler.close(0.0)
            engine.close(0.0)
        try:
            conn.close()
        except OSError:
            pass


# -- parent-side shard handle -------------------------------------------------


class _Shard:
    """Parent-side state for one worker: process, link, pending futures."""

    def __init__(self, shard_id: int) -> None:
        self.id = shard_id
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn: socket.socket | None = None
        self.reader: threading.Thread | None = None
        self.write_lock = threading.Lock()
        self.lock = threading.Lock()
        self.next_id = 0
        #: request id -> ("serve", Future[ServeResult]) | (op, Future[tuple])
        self.pending: dict[int, tuple[str, Future]] = {}
        self.alive = False  # link up: control ops may round-trip
        self.ready = False  # registry re-synced: the router may place here
        self.in_flight = 0
        self.last_stats: dict = {}
        self.restarts = 0

    def take_pending(self) -> list[tuple[str, Future]]:
        with self.lock:
            items = list(self.pending.values())
            self.pending.clear()
            self.in_flight = 0
        return items


class ShardedEngine:
    """N engine shards behind one scheduler-shaped surface.

    Parameters
    ----------
    shards:
        Worker-process count (>= 1).
    start_method:
        ``fork`` | ``spawn`` | ``forkserver`` (default: the
        ``REPRO_SHARD_START`` environment variable, else ``fork`` where
        available).
    queue_limit / max_batch / target_batch_seconds / record_batches:
        Forwarded to each shard's :class:`BatchScheduler`.
    cache_size / precision / drain_timeout:
        Forwarded to each shard's :class:`MultiTenantEngine`;
        ``drain_timeout`` is also the default ``close()`` budget.
    heartbeat_interval:
        Seconds between monitor sweeps (process liveness + restart).
    spill_margin:
        How many more in-flight requests the affinity shard may hold
        than the least-loaded shard before the router spills.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        start_method: str | None = None,
        queue_limit: int = 256,
        max_batch: int | None = None,
        target_batch_seconds: float = 0.025,
        record_batches: int = 0,
        cache_size: int = 0,
        precision: str | None = None,
        drain_timeout: float = 10.0,
        heartbeat_interval: float = 0.25,
        spill_margin: int = 4,
    ) -> None:
        if shards < 1:
            raise ServeError(f"shards must be >= 1, got {shards}")
        if spill_margin < 0:
            raise ServeError(f"spill_margin must be >= 0, got {spill_margin}")
        self.shards = int(shards)
        self.start_method = resolve_start_method(start_method)
        self.drain_timeout = float(drain_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.spill_margin = int(spill_margin)
        self.default_adapter: str | None = None
        self._config = {
            "queue_limit": int(queue_limit),
            "max_batch": 32 if max_batch is None else int(max_batch),
            "target_batch_seconds": float(target_batch_seconds),
            "record_batches": int(record_batches),
            "cache_size": int(cache_size),
            "precision": precision,
            "drain_timeout": float(drain_timeout),
        }
        self._context = multiprocessing.get_context(self.start_method)
        self._metrics = MetricsRegistry(enabled=True)
        self._absorbed = MetricsRegistry(enabled=True)
        self._lock = threading.RLock()
        self._specs: "dict[str, TenantSpec]" = {}
        self._affinity: dict[str, int] = {}
        self._token = f"repro-shard-{id(self):x}"
        self._closed = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(self.shards + 2)
        self._address = self._listener.getsockname()
        self._shards = [_Shard(index) for index in range(self.shards)]
        try:
            for shard in self._shards:
                self._spawn(shard)
        except BaseException:
            self.close(0.0)
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-shard-monitor", daemon=True
        )
        self._monitor.start()

    # -- lifecycle: spawn / restart / death ------------------------------------

    def _spawn(self, shard: _Shard) -> None:
        """Start (or restart) one worker and wait for its hello."""
        process = self._context.Process(
            target=_shard_worker_main,
            args=(shard.id, self._address[0], self._address[1], self._token, dict(self._config)),
            name=f"repro-serve-shard-{shard.id}",
            daemon=True,
        )
        process.start()
        deadline = time.monotonic() + CONNECT_TIMEOUT
        conn = None
        while conn is None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                process.terminate()
                raise ServeError(
                    f"shard {shard.id} did not connect back within {CONNECT_TIMEOUT}s"
                )
            self._listener.settimeout(remaining)
            try:
                candidate, __ = self._listener.accept()
            except socket.timeout:
                continue
            candidate.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                candidate.settimeout(remaining)
                hello, __ = read_frame_sync(candidate)
                candidate.settimeout(None)
            except (ServeError, OSError):
                candidate.close()
                continue
            if (
                hello.get("op") == "hello"
                and hello.get("token") == self._token
                and hello.get("shard") == shard.id
            ):
                conn = candidate
            else:
                candidate.close()
        with shard.lock:
            shard.process = process
            shard.conn = conn
            shard.alive = True
        reader = threading.Thread(
            target=self._reader_loop,
            args=(shard, conn),
            name=f"repro-shard-reader-{shard.id}",
            daemon=True,
        )
        shard.reader = reader
        reader.start()
        # Re-sync the replicated registry (no-op on first start).  Only a
        # fully synced shard becomes routable — the router must never place
        # a request on a shard that has not reloaded its tenants yet.
        for spec in list(self._specs.values()):
            self._send_spec(shard, spec)
        shard.ready = True

    def _reader_loop(self, shard: _Shard, conn: socket.socket) -> None:
        try:
            while True:
                header, payload = read_frame_sync(conn)
                request_id = header.get("id")
                with shard.lock:
                    kind, future = shard.pending.pop(request_id, (None, None))
                    if kind == "serve":
                        shard.in_flight -= 1
                if future is None:
                    continue
                if kind == "serve":
                    future.set_result(
                        ServeResult(
                            embedding=decode_payload(payload),
                            status=header.get("status", ERROR),
                            timings=Timings.from_dict(header.get("timings") or {}),
                            error=header.get("error"),
                        )
                    )
                else:
                    future.set_result((header, payload))
        except (ServeError, OSError):
            pass
        finally:
            if shard.conn is conn:  # not an old link from before a restart
                self._shard_down(shard)

    def _shard_down(self, shard: _Shard) -> None:
        """Mark a shard dead and answer everything it owed — never hang."""
        with shard.lock:
            was_alive, shard.alive = shard.alive, False
            shard.ready = False
        if not was_alive:
            return
        self._metrics.inc("serve.shard.deaths")
        self._metrics.inc("serve.shard.deaths", shard=str(shard.id))
        if shard.last_stats:
            self._absorb_snapshot(shard.id, shard.last_stats)
            shard.last_stats = {}
        for kind, future in shard.take_pending():
            if kind == "serve":
                future.set_result(
                    ServeResult.failure(
                        ERROR, f"shard {shard.id} died with this request in flight"
                    )
                )
            else:
                if not future.done():
                    future.set_exception(
                        ServeError(f"shard {shard.id} died mid-{kind}")
                    )
        conn = shard.conn
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def _monitor_loop(self) -> None:
        while not self._closed:
            time.sleep(self.heartbeat_interval)
            if self._closed:
                return
            for shard in self._shards:
                process = shard.process
                if shard.alive and (process is None or not process.is_alive()):
                    self._shard_down(shard)
                if not shard.alive and not self._closed:
                    try:
                        with self._lock:
                            if self._closed:
                                return
                            self._spawn(shard)
                        shard.restarts += 1
                        self._metrics.inc("serve.shard.restarts")
                        self._metrics.inc(
                            "serve.shard.restarts", shard=str(shard.id)
                        )
                    except (ServeError, OSError):
                        continue  # retry next sweep

    # -- control-plane plumbing ------------------------------------------------

    def _roundtrip(
        self,
        shard: _Shard,
        header: dict,
        payload: bytes = b"",
        timeout: float = CONTROL_TIMEOUT,
    ) -> tuple[dict, bytes]:
        """One control op on one shard; raises typed errors, never hangs."""
        future: Future = Future()
        op = str(header.get("op"))
        with shard.lock:
            if not shard.alive or shard.conn is None:
                raise ServeError(f"shard {shard.id} is down")
            request_id = shard.next_id
            shard.next_id += 1
            shard.pending[request_id] = (op, future)
            conn = shard.conn
        frame = encode_frame(dict(header, id=request_id), payload)
        try:
            with shard.write_lock:
                conn.sendall(frame)
        except OSError as exc:
            self._shard_down(shard)
            raise ServeError(f"shard {shard.id} link failed: {exc}") from exc
        reply, blob = future.result(timeout)
        if reply.get("status") != OK:
            raise ServeError(
                f"shard {shard.id} {op} failed: {reply.get('error')}"
            )
        return reply, blob

    def _send_spec(self, shard: _Shard, spec: TenantSpec) -> None:
        reply, __ = self._roundtrip(
            shard,
            {
                "op": "register",
                "name": spec.name,
                "builder": spec.builder,
                "args": list(spec.args),
                "kwargs": dict(spec.kwargs),
                "merge": spec.merge,
                "precision": spec.precision,
                "digest": spec.digest,
                "version": spec.version,
            },
            encode_arrays(spec.state),
        )
        if reply.get("digest") != spec.digest:
            raise ServeError(
                f"shard {shard.id} loaded tenant {spec.name!r} with digest "
                f"{reply.get('digest')!r}, expected {spec.digest!r}"
            )

    def _live_shards(self) -> list[_Shard]:
        return [shard for shard in self._shards if shard.alive]

    # -- the replicated registry ------------------------------------------------

    def register(
        self,
        name: str,
        model_or_result: object,
        *,
        builder: object,
        args: tuple = (),
        kwargs: dict | None = None,
        merge: bool = True,
        precision: str | None = None,
    ) -> str:
        """Replicate one tenant to every shard; returns its state digest.

        ``model_or_result`` supplies the authoritative weights (a Module
        or AttachResult, exactly like ``MultiTenantEngine.register``);
        ``builder``/``args``/``kwargs`` must rebuild the *architecture*
        in a fresh process (module-level callable, JSON-able arguments).
        """
        from repro.peft.checkpoint import state_digest

        with self._lock:
            if self._closed:
                raise ServeError("register() on a closed ShardedEngine")
            module = _serving_module(model_or_result, merge)
            state = module.state_dict()
            previous = self._specs.get(name)
            spec = TenantSpec(
                name=name,
                builder=_builder_path(builder),
                args=tuple(args),
                kwargs=dict(kwargs or {}),
                merge=merge,
                precision=precision,
                state=state,
                digest=state_digest(state),
                version=previous.version + 1 if previous else 1,
            )
            failures = []
            for shard in self._live_shards():
                try:
                    self._send_spec(shard, spec)
                except ServeError as exc:
                    failures.append(str(exc))
            if failures:
                raise ServeError(
                    f"tenant {name!r} failed to replicate: {'; '.join(failures)}"
                )
            self._specs[name] = spec
            if name not in self._affinity:
                self._affinity[name] = len(self._affinity) % self.shards
            return spec.digest

    def swap(self, name: str, model_or_result: object, **kwargs: object) -> str:
        """Hot-swap ``name`` everywhere (must already be registered)."""
        with self._lock:
            if name not in self._specs:
                known = ", ".join(sorted(self._specs)) or "(none)"
                raise ServeError(
                    f"cannot swap unknown tenant {name!r} (registered: {known})"
                )
            previous = self._specs[name]
            kwargs.setdefault("builder", previous.builder)
            kwargs.setdefault("args", previous.args)
            kwargs.setdefault("kwargs", previous.kwargs)
            kwargs.setdefault("merge", previous.merge)
            kwargs.setdefault("precision", previous.precision)
            if isinstance(kwargs["builder"], str):
                kwargs["builder"] = _resolve_builder(kwargs["builder"])
            self._metrics.inc("serve.registry.swap")
            return self.register(name, model_or_result, **kwargs)

    def evict(self, name: str) -> None:
        """Remove ``name`` from every shard."""
        with self._lock:
            if name not in self._specs:
                known = ", ".join(sorted(self._specs)) or "(none)"
                raise ServeError(
                    f"cannot evict unknown tenant {name!r} (registered: {known})"
                )
            del self._specs[name]
            self._affinity.pop(name, None)
            for shard in self._live_shards():
                try:
                    self._roundtrip(shard, {"op": "evict", "name": name})
                except ServeError:
                    continue  # the restart re-sync won't replay it either

    def adapters(self) -> list[str]:
        with self._lock:
            return list(self._specs)

    def affinity(self) -> dict[str, int]:
        """Current adapter → home-shard assignment (router introspection)."""
        with self._lock:
            return dict(self._affinity)

    # -- the router (scheduler surface) ----------------------------------------

    def _place(self, adapter: str) -> _Shard | None:
        """Affinity first, least-in-flight second; None when all are down."""
        live = [shard for shard in self._shards if shard.ready]
        if not live:
            return None
        least = min(live, key=lambda shard: (shard.in_flight, shard.id))
        home_id = self._affinity.get(adapter)
        if home_id is not None:
            home = self._shards[home_id]
            if home.ready and home.in_flight <= least.in_flight + self.spill_margin:
                self._metrics.inc("serve.router.affinity")
                return home
        self._metrics.inc("serve.router.spill")
        return least

    def submit(self, request: ServeRequest) -> "Future[ServeResult]":
        """Route one request to a shard; never blocks, never hangs."""
        if not isinstance(request, ServeRequest):
            raise ServeError(
                f"submit() takes a ServeRequest, got {type(request).__name__}"
            )
        if request.batched:
            raise ServeError(
                "submit() takes single-sample requests; batching is the "
                "shard scheduler's job"
            )
        future: "Future[ServeResult]" = Future()
        adapter = request.adapter if request.adapter is not None else self.default_adapter
        if self._closed:
            self._metrics.inc("serve.request.rejected")
            future.set_result(
                ServeResult.failure(REJECTED, "sharded engine is shutting down")
            )
            return future
        if adapter is None:
            future.set_result(
                ServeResult.failure(
                    ERROR,
                    "ServeRequest.adapter is None and this engine has no "
                    "default_adapter; name the tenant on the request",
                )
            )
            return future
        if adapter not in self._specs:
            known = ", ".join(sorted(self._specs)) or "(none)"
            future.set_result(
                ServeResult.failure(
                    ERROR, f"unknown adapter {adapter!r}; registered: {known}"
                )
            )
            return future
        remaining = None
        if request.deadline is not None:
            remaining = request.deadline_at() - time.perf_counter()
            if remaining <= 0:
                elapsed = time.perf_counter() - request.created_at
                self._metrics.inc("serve.request.deadline_missed")
                future.set_result(
                    ServeResult.failure(
                        DEADLINE_MISSED,
                        f"SLO budget of {request.deadline}s lapsed before routing",
                        Timings(queue_seconds=elapsed, total_seconds=elapsed),
                    )
                )
                return future
        shard = self._place(adapter)
        if shard is None:
            future.set_result(
                ServeResult.failure(ERROR, "no live shard to route to")
            )
            return future
        return self._submit_to(shard, request, adapter, remaining, future)

    def _submit_to(
        self,
        shard: _Shard,
        request: ServeRequest,
        adapter: str,
        remaining: float | None,
        future: "Future[ServeResult]",
    ) -> "Future[ServeResult]":
        header = {
            "op": "serve",
            "adapter": adapter,
            "deadline": remaining,
            "priority": request.priority,
        }
        payload = encode_payload(request.sample)
        with shard.lock:
            if not shard.alive or shard.conn is None:
                future.set_result(
                    ServeResult.failure(ERROR, f"shard {shard.id} is down")
                )
                return future
            request_id = shard.next_id
            shard.next_id += 1
            shard.pending[request_id] = ("serve", future)
            shard.in_flight += 1
            conn = shard.conn
        try:
            with shard.write_lock:
                conn.sendall(encode_frame(dict(header, id=request_id), payload))
        except OSError:
            self._shard_down(shard)
        return future

    def serve_on(
        self, shard_id: int, requests: "list[ServeRequest]", timeout: float = CONTROL_TIMEOUT
    ) -> "list[ServeResult]":
        """Send requests to one specific shard and wait (bench probes)."""
        if not 0 <= shard_id < self.shards:
            raise ServeError(f"no shard {shard_id} (have {self.shards})")
        shard = self._shards[shard_id]
        futures = []
        for request in requests:
            adapter = (
                request.adapter if request.adapter is not None else self.default_adapter
            )
            future: "Future[ServeResult]" = Future()
            remaining = None
            if request.deadline is not None:
                remaining = request.deadline_at() - time.perf_counter()
            futures.append(
                self._submit_to(shard, request, adapter, remaining, future)
            )
        return [future.result(timeout) for future in futures]

    def depth(self) -> int:
        """Requests currently in flight across all shards."""
        return sum(shard.in_flight for shard in self._shards)

    def healthy_shards(self) -> int:
        """Shards that are live *and* registry-synced (hence routable)."""
        return sum(1 for shard in self._shards if shard.ready)

    # -- stats merge-back -------------------------------------------------------

    def _absorb_snapshot(self, shard_id: int, snapshot: dict) -> None:
        self._absorbed.merge(snapshot)
        self._absorbed.merge(_label_snapshot(snapshot, shard_id))

    def _collect(self, op: str = "stats", drain: float | None = None) -> dict[int, dict]:
        """Pull one snapshot per live shard, absorbing shipped spans."""
        snapshots: dict[int, dict] = {}
        for shard in self._live_shards():
            header = {"op": op}
            if op == "close":
                header["drain"] = drain
            try:
                reply, __ = self._roundtrip(shard, header)
            except (ServeError, TimeoutError):
                continue
            snapshot = reply.get("stats") or {}
            shard.last_stats = snapshot
            snapshots[shard.id] = snapshot
            # Spans merge back only while the parent tracer is on: a
            # long-lived server with tracing off must not accumulate
            # worker roots nobody will ever drain.
            if TRACER.enabled:
                merge_worker_obs({}, reply.get("spans") or [], shard=shard.id)
        return snapshots

    def stats(self) -> dict[str, dict]:
        """One unified snapshot: all shards summed + ``{shard=i}`` twins.

        Bare series aggregate across shards (plus anything absorbed from
        shards that died or closed); each series also appears as a
        ``name{shard=i}`` twin so per-shard behavior stays visible.
        Router/lifecycle counters (``serve.router.*``,
        ``serve.shard.*``) come from the parent.
        """
        merged = MetricsRegistry(enabled=True)
        merged.merge(self._absorbed.snapshot())
        for shard_id, snapshot in self._collect().items():
            merged.merge(snapshot)
            merged.merge(_label_snapshot(snapshot, shard_id))
        merged.merge(self._metrics.snapshot())
        return merged.snapshot()

    def shard_stats(self) -> dict[str, dict]:
        """Per-shard breakdown (live snapshot, or last known when down)."""
        snapshots = self._collect()
        out: dict[str, dict] = {}
        for shard in self._shards:
            out[str(shard.id)] = snapshots.get(shard.id, shard.last_stats)
        return out

    def recorded_batches(self) -> dict[int, list[dict]]:
        """Each shard's recorded micro-batches (for bit-identity replay).

        Per batch: ``{"adapters": [...], "statuses": [...], "samples":
        [...], "embeddings": [...]}`` (embeddings ``None`` where the
        request did not serve ``ok``).
        """
        out: dict[int, list[dict]] = {}
        for shard in self._live_shards():
            try:
                reply, blob = self._roundtrip(shard, {"op": "recorded"})
            except (ServeError, TimeoutError):
                continue
            arrays = decode_arrays(blob)
            batches = []
            for b, meta in enumerate(reply.get("batches") or []):
                size = len(meta["adapters"])
                batches.append(
                    {
                        "adapters": list(meta["adapters"]),
                        "statuses": list(meta["statuses"]),
                        "samples": [arrays[f"{b}.{i}.sample"] for i in range(size)],
                        "embeddings": [
                            arrays.get(f"{b}.{i}.embedding") for i in range(size)
                        ],
                    }
                )
            out[shard.id] = batches
        return out

    # -- shutdown ---------------------------------------------------------------

    def close(self, drain_timeout: float | None = None) -> None:
        """Drain every shard, reap the workers, fail whatever remains."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        drain = self.drain_timeout if drain_timeout is None else float(drain_timeout)
        for shard_id, snapshot in self._collect("close", drain).items():
            self._absorb_snapshot(shard_id, snapshot)
        for shard in self._shards:
            self._shard_down(shard)
            process = shard.process
            if process is not None and process.is_alive():
                process.join(timeout=max(drain, 1.0))
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _label_snapshot(snapshot: dict, shard_id: int) -> dict:
    """A twin of ``snapshot`` with ``shard=<id>`` stamped into every name."""
    labeled = {}
    for rendered, series in snapshot.items():
        name, labels = parse_name(rendered)
        if any(key == "shard" for key, __ in labels):
            labeled[rendered] = series
            continue
        combined = tuple(sorted(labels + (("shard", str(shard_id)),)))
        labeled[render_name(name, combined)] = series
    return labeled
