"""Process-pool sharding of the Table I experiment grid.

The grid has two phases, both sharded over the same pool:

1. **Seed contexts** — one :class:`~repro.eval.protocol.Table1SeedContext`
   per seed: pretrain the backbone once, freeze the task splits.  Workers
   return the context to the parent, which re-ships the *shared frozen
   backbone* to every dependent cell instead of letting each cell redo
   pretraining.
2. **Cells** — one ``(seed, method)`` pair each, the independent unit of
   the paper's Table I.  Each cell derives its RNG from its key alone
   (:func:`repro.eval.protocol.method_rng`), so the grid is bit-identical
   to the serial :func:`repro.eval.protocol.run_table1` loop at any
   worker count — the property the bench harness asserts in-process.

Cells run under the autograd memory diet (``backward_release``), which is
safe because the training loops never backpropagate a graph twice, and
bit-identical because releasing graph metadata does not change numerics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.eval.protocol import (
    Table1Config,
    Table1Row,
    Table1SeedContext,
    prepare_table1_seed,
    run_table1_cell,
)
from repro.runtime.pool import CellResult, raise_failures, run_cells

#: Perf overrides applied around every grid cell (see module docstring).
CELL_PERF = {"backward_release": True}


@dataclass
class Table1GridResult:
    """All rows of a multi-seed Table I grid, plus per-cell diagnostics."""

    config: Table1Config
    seeds: tuple[int, ...]
    rows_by_seed: list[dict[str, Table1Row]]
    cell_results: list[CellResult] = field(default_factory=list)

    @property
    def failures(self) -> list:
        return [r.failure for r in self.cell_results if not r.ok]


def _prepare_seed(cell: tuple[Table1Config, int]) -> Table1SeedContext:
    config, seed = cell
    return prepare_table1_seed(config, seed)


def _run_cell(cell: tuple[Table1Config, Table1SeedContext, str]) -> Table1Row:
    config, context, method = cell
    return run_table1_cell(config, context, method)


def run_table1_grid(
    config: Table1Config,
    seeds: tuple[int, ...] | list[int],
    jobs: int = 1,
    strict: bool = True,
) -> Table1GridResult:
    """Shard the ``seeds × config.methods`` Table I grid over ``jobs`` workers.

    Bit-identical to ``[run_table1(config, seed) for seed in seeds]`` at
    any ``jobs`` (including the ``jobs=1`` serial fallback).  With
    ``strict`` (default), any cell failure raises
    :class:`repro.errors.WorkerError` after the whole grid has drained;
    otherwise failed cells appear in ``result.cell_results`` and their
    rows are omitted.
    """
    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ConfigError("run_table1_grid needs at least one seed")

    context_results = run_cells(
        _prepare_seed,
        [(config, seed) for seed in seeds],
        jobs=jobs,
        keys=[("context", seed) for seed in seeds],
    )
    if strict:
        raise_failures(context_results)
    contexts = {
        result.key[1]: result.value for result in context_results if result.ok
    }

    cells = []
    keys = []
    for seed in seeds:
        if seed not in contexts:
            continue  # non-strict: the seed's context failed; skip its cells
        for method in config.methods:
            cells.append((config, contexts[seed], method))
            keys.append((seed, method))
    cell_results = run_cells(
        _run_cell, cells, jobs=jobs, keys=keys, perf=dict(CELL_PERF)
    )
    if strict:
        raise_failures(cell_results)

    rows_by_seed: list[dict[str, Table1Row]] = []
    for seed in seeds:
        rows = {
            result.key[1]: result.value
            for result in cell_results
            if result.ok and result.key[0] == seed
        }
        rows_by_seed.append(rows)
    return Table1GridResult(
        config=config,
        seeds=seeds,
        rows_by_seed=rows_by_seed,
        cell_results=context_results + cell_results,
    )
