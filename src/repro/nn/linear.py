"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W + b`` with ``W ∈ R^{in × out}``.

    The weight is stored input-major (``(in_features, out_features)``), the
    orientation used throughout the paper's equations (``ΔW = A B`` with
    ``A ∈ R^{I×R}, B ∈ R^{R×O}``), so adapters add to it directly.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ShapeError(
                f"Linear dimensions must be positive, got ({in_features}, {out_features})"
            )
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform(rng, (in_features, out_features), fan_in=in_features)
        )
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear({self.in_features}->{self.out_features}) got input "
                f"with last dim {x.shape[-1]}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )
