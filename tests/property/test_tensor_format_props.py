"""Property-based tests for the tensor formats (CP / TR / Tucker / dummy)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.tensornet import (
    conv1d_direct,
    conv1d_via_dummy,
    cp_to_tensor,
    random_cp,
    random_tr,
    tr_decompose,
    tr_to_tensor,
    tucker_decompose,
    tucker_to_tensor,
)

SETTINGS = dict(max_examples=30, deadline=None)

dims = st.integers(2, 6)
ranks = st.integers(1, 4)
seeds = st.integers(0, 2**31 - 1)


class TestCPProperties:
    @given(dims, dims, dims, ranks, seeds)
    @settings(**SETTINGS)
    def test_reconstruction_shape(self, i, j, k, rank, seed):
        cp = random_cp((i, j, k), rank, np.random.default_rng(seed))
        assert cp_to_tensor(cp).shape == (i, j, k)

    @given(dims, dims, ranks, seeds)
    @settings(**SETTINGS)
    def test_cp_matrix_rank_bound(self, i, j, rank, seed):
        """A rank-R CP matrix has linear-algebra rank at most R."""
        cp = random_cp((i, j), rank, np.random.default_rng(seed))
        matrix = cp_to_tensor(cp)
        assert np.linalg.matrix_rank(matrix, tol=1e-8) <= rank

    @given(dims, dims, dims, ranks, seeds, st.floats(0.1, 10))
    @settings(**SETTINGS)
    def test_weight_scaling_homogeneous(self, i, j, k, rank, seed, scale):
        cp = random_cp((i, j, k), rank, np.random.default_rng(seed))
        scaled = type(cp)(lam=cp.lam * scale, factors=cp.factors)
        assert np.allclose(
            cp_to_tensor(scaled), scale * cp_to_tensor(cp), atol=1e-8
        )


class TestTRProperties:
    @given(dims, dims, dims, ranks, seeds)
    @settings(**SETTINGS)
    def test_roundtrip_exact_with_generous_rank(self, i, j, k, rank, seed):
        tr = random_tr((i, j, k), rank, np.random.default_rng(seed))
        target = tr_to_tensor(tr)
        est = tr_decompose(target, max_rank=i * j * k)
        assert np.allclose(tr_to_tensor(est), target, atol=1e-6)

    @given(dims, dims, ranks, seeds)
    @settings(**SETTINGS)
    def test_tr_matrix_rank_bound(self, i, j, rank, seed):
        """An order-2 TR with ring rank R has matrix rank at most R²."""
        tr = random_tr((i, j), rank, np.random.default_rng(seed))
        matrix = tr_to_tensor(tr)
        assert np.linalg.matrix_rank(matrix, tol=1e-8) <= rank * rank

    @given(dims, dims, dims, seeds)
    @settings(**SETTINGS)
    def test_decompose_preserves_shape(self, i, j, k, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(i, j, k))
        assert tr_decompose(x, max_rank=3).shape == (i, j, k)


class TestTuckerProperties:
    @given(dims, dims, seeds)
    @settings(**SETTINGS)
    def test_full_rank_reconstruction(self, i, j, seed):
        x = np.random.default_rng(seed).normal(size=(i, j))
        tk = tucker_decompose(x, (i, j))
        assert np.allclose(tucker_to_tensor(tk), x, atol=1e-8)

    @given(dims, dims, dims, seeds)
    @settings(**SETTINGS)
    def test_error_bounded_by_norm(self, i, j, k, seed):
        x = np.random.default_rng(seed).normal(size=(i, j, k))
        tk = tucker_decompose(x, (1, 1, 1))
        err = np.linalg.norm(tucker_to_tensor(tk) - x)
        assert err <= np.linalg.norm(x) + 1e-9


class TestDummyConvProperties:
    @given(
        st.integers(5, 15),
        st.integers(1, 4),
        st.integers(1, 3),
        st.integers(0, 2),
        seeds,
    )
    @settings(**SETTINGS)
    def test_dummy_equals_direct_everywhere(self, n, k, stride, padding, seed):
        if n + 2 * padding < k:
            return  # no valid output
        rng = np.random.default_rng(seed)
        signal, kernel = rng.normal(size=n), rng.normal(size=k)
        assert np.allclose(
            conv1d_via_dummy(signal, kernel, stride, padding),
            conv1d_direct(signal, kernel, stride, padding),
            atol=1e-10,
        )

    @given(st.integers(5, 12), st.integers(1, 3), seeds)
    @settings(**SETTINGS)
    def test_convolution_linear_in_signal(self, n, k, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=n), rng.normal(size=n)
        kernel = rng.normal(size=k)
        lhs = conv1d_via_dummy(a + b, kernel)
        rhs = conv1d_via_dummy(a, kernel) + conv1d_via_dummy(b, kernel)
        assert np.allclose(lhs, rhs, atol=1e-10)
