"""Smoke test for the ``repro bench`` harness and its JSON schema."""

import json
from dataclasses import replace

import pytest

from repro.bench import (
    SCHEMA,
    format_bench_record,
    run_autograd_bench,
    run_load_bench,
    run_multi_tenant_bench,
    run_serve_bench,
    run_table1_parallel_bench,
    validate_bench_record,
    write_bench_records,
)
from repro.eval.protocol import Table1Config
from repro.runtime import fork_available

pytestmark = pytest.mark.bench_smoke


class TestBenchSmoke:
    def test_write_bench_records_emits_valid_json(self, tmp_path):
        paths = write_bench_records(str(tmp_path), scale="tiny", repeats=1)
        assert sorted(p.rsplit("/", 1)[-1] for p in paths) == [
            "BENCH_autograd.json",
            "BENCH_serve.json",
            "BENCH_table1.json",
        ]
        for path in paths:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
            validate_bench_record(record)  # schema round-trips through JSON
            assert record["schema"] == SCHEMA
            for entry in record["entries"]:
                assert entry["optimized_seconds"] > 0
                assert entry["max_abs_diff"] < 1e-8  # optimized matches reference

    def test_optimized_paths_report_cache_activity(self):
        record = run_autograd_bench(scale="tiny", repeats=1)
        counters = {name for e in record["entries"] for name in e["counters"]}
        assert "einsum.plan_cache.hit" in counters
        assert "conv2d.patches_cache.hit" in counters

    def test_format_is_human_readable(self):
        record = run_autograd_bench(scale="tiny", repeats=1)
        text = format_bench_record(record)
        assert "speedup" in text
        assert "geomean" in text

    def test_validate_rejects_corrupt_records(self):
        record = run_autograd_bench(scale="tiny", repeats=1)
        for corrupt in (
            {**record, "schema": "wrong/v0"},
            {**record, "kind": "nope"},
            {**record, "entries": []},
            {**record, "summary": {}},
        ):
            with pytest.raises(ValueError, match="invalid bench record"):
                validate_bench_record(corrupt)
        broken_entry = json.loads(json.dumps(record))
        broken_entry["entries"][0]["speedup"] = float("nan")
        with pytest.raises(ValueError, match="speedup"):
            validate_bench_record(broken_entry)


class TestServeBench:
    def test_serve_bench_is_bit_exact_and_validates(self):
        record = run_serve_bench(scale="tiny", repeats=1)
        validate_bench_record(json.loads(json.dumps(record)))
        assert record["kind"] == "serve"
        names = [entry["name"] for entry in record["entries"]]
        assert names == ["serve.resnet", "serve.mixer", "serve.resnet+meta_tr"]
        for entry in record["entries"]:
            # Exactness is asserted in-process; the record pins it too.
            assert entry["max_abs_diff"] == 0.0
            assert entry["samples"] >= 1 and entry["batch_size"] >= 1
            assert entry["throughput"]["compiled"] > 0
            assert entry["latency_ms"]["compiled_p99"] >= entry["latency_ms"]["compiled_p50"]
        text = format_bench_record(record)
        assert "throughput (samples/s)" in text
        assert "latency p50/p99" in text

    def test_validate_rejects_corrupt_serve_records(self):
        record = json.loads(json.dumps(run_serve_bench(scale="tiny", repeats=1)))
        for mutate, match in (
            (lambda e: e.update(max_abs_diff=1e-9), "bit-exact"),
            (lambda e: e.update(samples=0), "samples"),
            (lambda e: e.pop("throughput"), "throughput"),
            (lambda e: e["latency_ms"].pop("compiled_p99"), "compiled_p99"),
            (lambda e: e.update(batched_autograd_seconds=0.0), "batched_autograd_seconds"),
        ):
            corrupt = json.loads(json.dumps(record))
            mutate(corrupt["entries"][0])
            with pytest.raises(ValueError, match=match):
                validate_bench_record(corrupt)

    def test_write_bench_records_rejects_unknown_suites(self, tmp_path):
        with pytest.raises(ValueError, match="unknown bench suite"):
            write_bench_records(str(tmp_path), suites=("nope",))

    def test_suite_subset_writes_only_that_file(self, tmp_path):
        paths = write_bench_records(
            str(tmp_path), scale="tiny", repeats=1, suites=("serve",)
        )
        assert [p.rsplit("/", 1)[-1] for p in paths] == ["BENCH_serve.json"]


class TestPrecisionSection:
    @pytest.fixture(scope="class")
    def record(self):
        return json.loads(json.dumps(run_serve_bench(scale="tiny", repeats=1)))

    def test_precision_matrix_validates_and_formats(self, record):
        validate_bench_record(record)
        precision = record["precision"]
        assert precision["parallel_workers"] >= 2
        assert set(precision["budgets"]) == {"f32", "int8"}
        names = [backbone["name"] for backbone in precision["backbones"]]
        assert names == ["resnet", "mixer"]
        for backbone in precision["backbones"]:
            # Identity + accuracy checks run in-process; the record pins them.
            assert backbone["f64_bit_identical"] is True
            accuracy = backbone["knn"]["accuracy"]
            assert set(accuracy) == {"f64", "f32", "int8"}
            for tier, drop in backbone["knn"]["max_drop"].items():
                assert drop <= precision["budgets"][tier]
            tiers = {row["precision"] for row in backbone["rows"]}
            assert tiers == {"f64", "f32", "int8"}
            assert any(row["parallel"] > 1 for row in backbone["rows"])
            for row in backbone["rows"]:
                if row["precision"] == "f64":
                    assert row["max_abs_err_vs_f64"] == 0.0
        assert precision["best_speedup_vs_f64"] > 0
        text = format_bench_record(record)
        assert "precision matrix" in text
        assert "f32+fuse" in text

    def test_validate_rejects_corrupt_precision_sections(self, record):
        def corrupted(mutate):
            clone = json.loads(json.dumps(record))
            mutate(clone["precision"])
            return clone

        for mutate, match in (
            (lambda p: p.update(parallel_workers=1), "parallel_workers"),
            (lambda p: p.update(budgets={"f32": 0.02}), "budgets"),
            (lambda p: p.update(backbones=[]), "backbones"),
            (
                lambda p: p["backbones"][0].update(f64_bit_identical=False),
                "f64_bit_identical",
            ),
            (
                lambda p: p["backbones"][0]["knn"]["max_drop"].update(int8=0.9),
                "KNN drop",
            ),
            (
                lambda p: p["backbones"][0]["rows"][0].update(
                    max_abs_err_vs_f64=1e-9
                ),
                "bit-exact",
            ),
            (
                lambda p: [
                    row.update(parallel=1) for row in p["backbones"][0]["rows"]
                ],
                "parallel run",
            ),
            (lambda p: p.update(best_speedup_vs_f64=float("nan")), "best_speedup"),
        ):
            with pytest.raises(ValueError, match=match):
                validate_bench_record(corrupted(mutate))
        # The section is serve-only.
        autograd = run_autograd_bench(scale="tiny", repeats=1)
        with pytest.raises(ValueError, match="serve-only"):
            validate_bench_record({**autograd, "precision": record["precision"]})


class TestMultiTenantBenchSection:
    def test_multi_tenant_section_validates_and_formats(self):
        record = run_serve_bench(scale="tiny", repeats=1, tenants=3)
        multi = record["multi_tenant"]
        assert multi["tenants"] == 3
        assert multi["seed_slot_tenants"] == 2
        assert multi["static_tenants"] == 1
        assert multi["swaps"] == 1
        # Identity is asserted in-process; the record pins it too.
        assert multi["bit_identical"] is True
        # Seed-slot tenants shared extractor/body compilations.
        assert multi["program_cache"]["hit"] >= 1
        assert multi["speedup"] > 0
        assert multi["seed_slot"]["speedup"] > 0
        validate_bench_record(json.loads(json.dumps(record)))
        text = format_bench_record(record)
        assert "multi-tenant" in text
        assert "seed-slot only" in text
        assert "program cache" in text

    def test_tenants_zero_disables_the_section(self):
        record = run_serve_bench(scale="tiny", repeats=1, tenants=0)
        assert "multi_tenant" not in record

    def test_too_few_tenants_rejected(self):
        with pytest.raises(ValueError, match=">= 3 tenants"):
            run_multi_tenant_bench(scale="tiny", repeats=1, tenants=2)

    def test_validate_rejects_corrupt_multi_tenant_sections(self):
        base = json.loads(
            json.dumps(run_serve_bench(scale="tiny", repeats=1, tenants=0))
        )
        good = {
            "tenants": 3,
            "seed_slot_tenants": 2,
            "static_tenants": 1,
            "rounds": 4,
            "per_tenant": 1,
            "requests": 12,
            "swaps": 1,
            "serial_seconds": 1.0,
            "grouped_seconds": 0.5,
            "speedup": 2.0,
            "seed_slot": {
                "serial_seconds": 0.8,
                "grouped_seconds": 0.4,
                "speedup": 2.0,
            },
            "throughput": {"serial": 12.0, "grouped": 24.0},
            "program_cache": {"hit": 4, "miss": 5, "evict": 0, "hit_rate": 4 / 9},
            "bit_identical": True,
        }
        validate_bench_record({**base, "multi_tenant": good})
        autograd = run_autograd_bench(scale="tiny", repeats=1)
        for corrupt, match in (
            ({**autograd, "multi_tenant": good}, "serve-only"),
            ({**base, "multi_tenant": {**good, "tenants": 2}}, "tenants"),
            (
                {**base, "multi_tenant": {**good, "seed_slot": {}}},
                "seed_slot",
            ),
            (
                {**base, "multi_tenant": {**good, "speedup": float("nan")}},
                "speedup",
            ),
            (
                {
                    **base,
                    "multi_tenant": {
                        **good,
                        "program_cache": {**good["program_cache"], "hit": 0},
                    },
                },
                "hit",
            ),
            (
                {
                    **base,
                    "multi_tenant": {
                        **good,
                        "program_cache": {**good["program_cache"], "hit_rate": 1.5},
                    },
                },
                "hit_rate",
            ),
            (
                {**base, "multi_tenant": {**good, "bit_identical": False}},
                "bit_identical",
            ),
        ):
            with pytest.raises(ValueError, match=match):
                validate_bench_record(corrupt)


class TestLoadBench:
    @pytest.fixture(scope="class")
    def record(self):
        # A real frontend + loadgen run, shortened: three offered-load
        # levels at 0.3 s each still exercise admission, batching and the
        # per-batch replay identity check end to end.  ``shards=0`` skips
        # the scaling sweep — TestScalingSection covers it separately.
        return json.loads(
            json.dumps(
                run_load_bench(scale="tiny", repeats=1, duration=0.3, shards=0)
            )
        )

    def test_load_record_validates_and_formats(self, record):
        validate_bench_record(record)
        assert record["kind"] == "load"
        assert record["capacity_estimate_rps"] > 0
        levels = record["load"]["levels"]
        assert len(levels) >= 3
        offered = [level["offered_rate"] for level in levels]
        assert offered == sorted(offered) and len(set(offered)) == len(offered)
        for level in levels:
            assert level["sent"] >= 1
            assert level["completed"] == (
                level["ok"] + level["rejected"] + level["deadline_missed"]
            )
            latency = level["latency_ms"]
            assert latency["p50"] <= latency["p99"] <= latency["p999"]
            assert level["queue_depth"] and level["batch_size"]
        # Identity is asserted in-process; the record pins it too.
        assert record["bit_identical"] is True
        assert record["replayed_batches"] >= 1
        text = format_bench_record(record)
        assert "offered" in text and "p999" in text
        assert "bit-identical: True" in text

    def test_validate_rejects_corrupt_load_records(self, record):
        def corrupted(mutate):
            clone = json.loads(json.dumps(record))
            mutate(clone)
            return clone

        for mutate, match in (
            (lambda r: r["load"]["levels"].pop(), ">= 3 offered-load levels"),
            (
                lambda r: r["load"]["levels"][2].update(
                    offered_rate=r["load"]["levels"][0]["offered_rate"]
                ),
                "strictly increasing",
            ),
            (lambda r: r["load"]["levels"][0].update(sent=0), "sent"),
            (
                lambda r: r["load"]["levels"][0]["latency_ms"].pop("p999"),
                "latency_ms.p999",
            ),
            (
                lambda r: r["load"]["levels"][0]["latency_ms"].update(p50=9e9),
                "non-decreasing",
            ),
            (
                lambda r: r["load"]["levels"][0].update(queue_depth={}),
                "queue_depth",
            ),
            (
                lambda r: r["load"]["levels"][0]["counters"].pop(
                    "serve.request.rejected"
                ),
                "counters",
            ),
            (lambda r: r.update(bit_identical=False), "bit_identical"),
            (lambda r: r.update(replayed_batches=0), "replayed_batches"),
            (lambda r: r.update(summary={}), "peak_achieved_rate"),
            (lambda r: r["server"].update(queue_limit=0), "queue_limit"),
        ):
            with pytest.raises(ValueError, match=match):
                validate_bench_record(corrupted(mutate))

    def test_load_bench_rejects_bad_level_plans(self):
        with pytest.raises(ValueError, match=">= 3 offered-load levels"):
            run_load_bench(scale="tiny", load_factors=(0.5, 1.0))
        with pytest.raises(ValueError, match="increasing"):
            run_load_bench(scale="tiny", load_factors=(1.0, 0.5, 2.0))

    def test_shards_below_two_skip_the_scaling_section(self, record):
        assert "scaling" not in record

    def test_load_suite_is_opt_in(self, tmp_path):
        paths = write_bench_records(
            str(tmp_path), scale="tiny", repeats=1, suites=("load",),
            load_duration=0.3, shards=0,
        )
        assert [p.rsplit("/", 1)[-1] for p in paths] == ["BENCH_load.json"]
        with open(paths[0], encoding="utf-8") as handle:
            validate_bench_record(json.load(handle))


class TestScalingSection:
    @pytest.fixture(scope="class")
    def record(self):
        # 1 and 2 shards, two short offered-load levels each, per-shard
        # capacity probes and recorded-batch replays included — the full
        # scaling machinery at the smallest non-trivial size.
        return json.loads(
            json.dumps(
                run_load_bench(scale="tiny", repeats=1, duration=0.25, shards=2)
            )
        )

    def test_scaling_section_validates_and_formats(self, record):
        validate_bench_record(record)
        scaling = record["scaling"]
        assert scaling["host_cpus"] >= 1
        assert scaling["start_method"] in ("fork", "spawn", "forkserver")
        assert scaling["shard_counts"] == [1, 2]
        for count, entry in zip([1, 2], scaling["entries"]):
            assert entry["shards"] == count
            assert len(entry["per_shard_capacity_rps"]) == count
            assert entry["capacity_estimate_rps"] == pytest.approx(
                sum(entry["per_shard_capacity_rps"])
            )
            # Identity is asserted in-process; the record pins it too.
            assert entry["bit_identical"] is True
            assert entry["replayed_batches"] >= 1
            for level in entry["levels"]:
                assert level["completed"] == (
                    level["ok"] + level["rejected"] + level["deadline_missed"]
                )
        # Two isolated single-shard probes must sum to near-2x capacity
        # (the validator's 2-shard floor; 1.7 is enforced from 4 shards).
        assert scaling["summary"]["capacity_ratio"] >= 1.3
        text = format_bench_record(record)
        assert "scaling" in text and "capacity ratio" in text

    def test_validate_rejects_corrupt_scaling_sections(self, record):
        def corrupted(mutate):
            clone = json.loads(json.dumps(record))
            mutate(clone["scaling"])
            return clone

        for mutate, match in (
            (lambda s: s.update(host_cpus=0), "host_cpus"),
            (lambda s: s.update(start_method="thread"), "start_method"),
            (lambda s: s.update(shard_counts=[2, 1]), "shard_counts"),
            (lambda s: s["entries"].reverse(), "misordered"),
            (lambda s: s["entries"][1].update(per_shard_capacity_rps=[1.0]),
             "per_shard_capacity_rps"),
            (lambda s: s["entries"][0].update(levels=[]), "levels"),
            (lambda s: s["entries"][0].update(bit_identical=False),
             "bit_identical"),
            (lambda s: s["entries"][0].update(replayed_batches=0),
             "replayed_batches"),
            (lambda s: s["summary"].update(top_shards=4), "top_shards"),
        ):
            with pytest.raises(ValueError, match=match):
                validate_bench_record(corrupted(mutate))
        # A fleet that stopped scaling cannot validate: pin both entries to
        # the same capacity (ratio 1.0) and the ratio floor trips.
        flat = json.loads(json.dumps(record))
        base = flat["scaling"]["entries"][0]["capacity_estimate_rps"]
        flat["scaling"]["entries"][1]["capacity_estimate_rps"] = base
        flat["scaling"]["summary"]["capacity_ratio"] = 1.0
        with pytest.raises(ValueError, match="capacity_ratio must be >="):
            validate_bench_record(flat)


class TestParallelBenchSection:
    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_parallel_bench_on_a_micro_grid(self):
        # A two-cell grid keeps the three grid executions cheap while still
        # exercising the real pool + equality check end to end.
        config = replace(
            Table1Config().quick(), methods=("original", "lora"), adapt_episodes=5
        )
        section = run_table1_parallel_bench(jobs=2, seeds=(0,), config=config)
        assert section["jobs"] == 2
        assert section["cells"] == 2
        assert section["seeds"] == [0]
        assert section["rows_equal"] is True
        assert section["parallel_seconds"] > 0
        # Round-trips through the schema validator as part of a record.
        record = {
            **run_autograd_bench(scale="tiny", repeats=1),
            "kind": "table1",
            "parallel": section,
        }
        validate_bench_record(json.loads(json.dumps(record)))
        text = format_bench_record(record)
        assert "parallel grid" in text
        assert "rows bit-identical: True" in text

    def test_validate_rejects_corrupt_parallel_sections(self):
        base = run_autograd_bench(scale="tiny", repeats=1)
        good = {
            "jobs": 2,
            "host_cpus": 1,
            "seeds": [0],
            "cells": 2,
            "per_cell_serial_seconds": 1.0,
            "seed_loop_serial_seconds": 0.8,
            "parallel_seconds": 0.5,
            "speedup": 2.0,
            "speedup_vs_seed_loop": 1.6,
            "rows_equal": True,
        }
        validate_bench_record({**base, "kind": "table1", "parallel": good})
        for corrupt, match in (
            ({**base, "parallel": good}, "table1-only"),  # kind stays autograd
            ({**base, "kind": "table1", "parallel": {**good, "jobs": 1}}, "jobs"),
            (
                {**base, "kind": "table1", "parallel": {**good, "seeds": []}},
                "seeds",
            ),
            (
                {
                    **base,
                    "kind": "table1",
                    "parallel": {**good, "parallel_seconds": float("nan")},
                },
                "parallel_seconds",
            ),
            (
                {**base, "kind": "table1", "parallel": {**good, "rows_equal": False}},
                "rows_equal",
            ),
        ):
            with pytest.raises(ValueError, match=match):
                validate_bench_record(corrupt)
