"""Adapter base class and model surgery (injection / merging).

``inject_adapters`` walks a model, replaces every target layer with an
adapter wrapping it, and freezes the base weights — the defining PEFT
mechanic: only adapter parameters receive gradients.  ``merge_adapters``
reverses the surgery, baking each static adapter's ``ΔW`` into the base
layer so inference costs exactly the original model.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import AdapterError
from repro.nn.module import Module


class Adapter(Module):
    """Base class for adapters wrapping a frozen ``base`` layer.

    Subclasses implement ``forward`` (base output + low-rank delta) and,
    for static adapters, ``delta_weight`` so merging is possible.  Meta
    adapters (input-conditioned ΔW) override ``set_seed`` and report
    ``is_meta = True``; their ΔW differs per sample, so they cannot merge.
    """

    is_meta = False

    def __init__(self, base: Module) -> None:
        super().__init__()
        base.freeze()
        self.base = base

    def delta_weight(self) -> np.ndarray:
        """The materialized weight update ``ΔW`` (static adapters only)."""
        raise AdapterError(f"{type(self).__name__} cannot materialize a static ΔW")

    def merge(self) -> Module:
        """Return the base layer with ``ΔW`` folded into its weight."""
        delta = self.delta_weight()
        if delta.shape != self.base.weight.data.shape:
            raise AdapterError(
                f"delta shape {delta.shape} does not match base weight "
                f"{self.base.weight.data.shape}"
            )
        self.base.weight.data[...] = self.base.weight.data + delta
        return self.base

    def set_seed(self, seed: Tensor | None) -> None:
        """Install the per-sample seed (meta adapters only)."""
        raise AdapterError(f"{type(self).__name__} does not take a generated seed")


def get_module(root: Module, dotted_name: str) -> Module:
    """Resolve ``"blocks.0.conv1"`` style paths."""
    module: Module = root
    for part in dotted_name.split("."):
        children = module._modules
        if part not in children:
            raise AdapterError(f"no child {part!r} under {type(module).__name__}")
        module = children[part]
    return module


def set_module(root: Module, dotted_name: str, new_module: Module) -> None:
    """Replace the child at ``dotted_name`` with ``new_module``."""
    parts = dotted_name.split(".")
    parent = get_module(root, ".".join(parts[:-1])) if len(parts) > 1 else root
    leaf = parts[-1]
    if leaf not in parent._modules:
        raise AdapterError(f"no child {leaf!r} under {type(parent).__name__}")
    parent.register_module(leaf, new_module)
    # Keep Sequential/ModuleList internal lists consistent.
    items = getattr(parent, "_items", None)
    if items is not None and leaf.isdigit():
        items[int(leaf)] = new_module


def inject_adapters(
    model: Module,
    factory: Callable[[Module], Adapter],
    target_types: Sequence[type],
    skip: Sequence[str] = (),
) -> tuple[Module, dict[str, Adapter]]:
    """Replace every instance of ``target_types`` in ``model`` with an adapter.

    ``factory`` receives the layer being wrapped and returns the adapter.
    ``skip`` lists dotted names to leave untouched (e.g. the classifier
    head).  The whole model is frozen first, so afterwards only the
    adapters' own parameters are trainable.  Returns the model (modified in
    place) and the mapping of dotted name -> adapter.
    """
    model.freeze()
    targets = [
        name
        for name, module in model.named_modules()
        if isinstance(module, tuple(target_types)) and name and name not in skip
    ]
    if not targets:
        raise AdapterError(
            f"no layers of type {[t.__name__ for t in target_types]} found to adapt"
        )
    adapters: dict[str, Adapter] = {}
    for name in targets:
        layer = get_module(model, name)
        if isinstance(layer, Adapter):
            raise AdapterError(f"layer {name!r} already adapted")
        adapter = factory(layer)
        set_module(model, name, adapter)
        adapters[name] = adapter
    return model, adapters


def iter_adapters(model: Module) -> Iterator[tuple[str, Adapter]]:
    """Yield every adapter in the model with its dotted name."""
    for name, module in model.named_modules():
        if isinstance(module, Adapter):
            yield name, module


def merge_adapters(model: Module) -> Module:
    """Merge every static adapter back into its base layer, in place."""
    merged = [(name, adapter) for name, adapter in iter_adapters(model)]
    for name, adapter in merged:
        if adapter.is_meta:
            raise AdapterError(
                f"adapter {name!r} is input-conditioned (meta) and cannot be merged"
            )
        set_module(model, name, adapter.merge())
    return model
