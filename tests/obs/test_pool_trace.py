"""Cross-process observability: worker span/counter merge-back in the pool."""

import pytest

from repro.obs import OBS, TRACER, observed
from repro.runtime import fork_available
from repro.runtime.pool import run_cells

needs_fork = pytest.mark.skipif(not fork_available(), reason="no fork start method")


def _work(cell: int) -> int:
    """Module-level so it pickles into pool workers; records one counter."""
    OBS.enabled and OBS.inc("pooltest.units", cell, bytes=cell)
    return cell * 2


class TestWorkerMergeBack:
    @needs_fork
    def test_worker_spans_attach_under_the_open_parent_span(self):
        with observed():
            with TRACER.span("batch") as parent:
                results = run_cells(_work, [1, 2, 3], jobs=2, span_name="test.cell")
            assert [r.value for r in results] == [2, 4, 6]
            assert sorted(c.name for c in parent.children) == ["test.cell"] * 3
            assert sorted(c.attrs["key"] for c in parent.children) == ["1", "2", "3"]
            snap = OBS.snapshot()
        assert snap["pooltest.units"]["calls"] == 6
        assert snap["pooltest.units"]["bytes"] == 6

    @needs_fork
    def test_worker_spans_carry_their_metric_deltas(self):
        with observed():
            with TRACER.span("batch") as parent:
                run_cells(_work, [4], jobs=2, span_name="test.cell")
            (cell_span,) = parent.children
        delta = cell_span.metrics["pooltest.units"]
        assert delta["calls"] == 4
        assert delta["bytes"] == 4

    def test_serial_cells_nest_in_process(self):
        with observed():
            with TRACER.span("batch") as parent:
                run_cells(_work, [1, 2], jobs=1, span_name="test.cell")
            assert [c.name for c in parent.children] == ["test.cell", "test.cell"]
            snap = OBS.snapshot()
        assert snap["pooltest.units"]["calls"] == 3

    @needs_fork
    def test_counters_are_identical_serial_vs_parallel(self):
        # The merge-back is bit-identical for counter payloads: the same
        # cells produce the same calls/bytes at any worker count.
        def counted(jobs: int) -> tuple:
            with observed(trace=False):
                OBS.reset()
                run_cells(_work, [1, 2, 3, 4], jobs=jobs)
                entry = OBS.snapshot()["pooltest.units"]
                return entry["calls"], entry["bytes"]

        assert counted(1) == counted(2)

    @needs_fork
    def test_retry_records_counters_and_a_parent_event(self, monkeypatch):
        # Crash cell "2" on attempt 0 only; the retry must recover it and
        # leave both the retry counters and a span event behind.
        monkeypatch.setenv("REPRO_FAULTS", "crash:2:1")
        with observed():
            with TRACER.span("batch") as parent:
                results = run_cells(
                    _work,
                    [1, 2],
                    jobs=2,
                    max_retries=1,
                    retry_backoff=0.0,
                    span_name="test.cell",
                )
            assert all(r.ok for r in results)
            snap = OBS.snapshot()
        assert snap["retry.attempt"]["calls"] == 1
        assert snap["retry.recovered"]["calls"] == 1
        assert snap["faults.crash"]["calls"] == 1
        (event,) = [e for e in parent.events if e["name"] == "retry"]
        assert event["attrs"]["cells"] == 1
        # The crashed attempt's span ships back too, marked as an error.
        statuses = sorted((c.attrs["key"], c.status) for c in parent.children)
        assert ("2", "error") in statuses
        assert ("2", "ok") in statuses
