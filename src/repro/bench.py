"""The ``repro bench`` performance harness.

Times the optimized hot paths against the reference implementation —
in the same process, flipped via :func:`repro.perf.perf_overrides` — and
writes two JSON records:

- ``BENCH_autograd.json`` — micro-benchmarks of the einsum plan cache /
  contraction planner and the conv2d patch cache, with per-case speedup
  and the max |optimized - reference| output gap;
- ``BENCH_table1.json`` — the Table I protocol micro-bench: one episodic
  training step (forward + backward) of a MetaLoRA model at reduced
  scale, reference vs. optimized.

Record schema (``validate_bench_record`` enforces it; the bench smoke
test round-trips it)::

    {
      "schema": "repro.bench/v1",
      "kind": "autograd" | "table1",
      "scale": "tiny" | "small",
      "repeats": int,
      "entries": [
        {
          "name": str,
          "reference_seconds": float,   # best-of-``repeats`` wall time
          "optimized_seconds": float,
          "speedup": float,             # reference / optimized
          "max_abs_diff": float,        # output gap between the paths
          "counters": {str: {"calls": int, "seconds": float, "bytes": int}},
        }, ...
      ],
      "summary": {"min_speedup": float, "geomean_speedup": float},
    }

``counters`` holds the :data:`~repro.utils.profiling.PROFILER` snapshot
of the optimized run (cache hit/miss counts, op calls, bytes).
"""

from __future__ import annotations

import json
import os
from typing import Callable

import numpy as np

from repro.autograd import conv_ops, ops
from repro.autograd.tensor import Tensor
from repro.perf import reference_mode
from repro.utils.profiling import PROFILER
from repro.utils.timing import time_calls

SCHEMA = "repro.bench/v1"

#: problem sizes per scale; "tiny" is the CI smoke setting.
_SCALES = {
    "tiny": {"batch": 4, "tokens": 8, "rank": 4, "features": 32, "image": 12, "channels": 8},
    "small": {"batch": 16, "tokens": 16, "rank": 8, "features": 128, "image": 16, "channels": 16},
}


def _clear_caches() -> None:
    ops.clear_einsum_plan_cache()
    conv_ops.clear_conv_caches()


def _measure(
    fn: Callable[[], np.ndarray], repeats: int
) -> tuple[dict[str, float], np.ndarray, dict]:
    """Time ``fn`` under reference then optimized flags.

    Returns the timing/diff record fields, the reference output (for
    callers that chain checks), and the optimized-run profiler counters.
    """
    with reference_mode():
        _clear_caches()
        ref_seconds, ref_out = time_calls(fn, repeats=repeats)
    _clear_caches()
    PROFILER.reset()
    PROFILER.enable()
    try:
        opt_seconds, opt_out = time_calls(fn, repeats=repeats)
    finally:
        PROFILER.disable()
    counters = PROFILER.as_dict()
    diff = float(np.max(np.abs(np.asarray(ref_out) - np.asarray(opt_out))))
    fields = {
        "reference_seconds": float(ref_seconds),
        "optimized_seconds": float(opt_seconds),
        "speedup": float(ref_seconds / max(opt_seconds, 1e-12)),
        "max_abs_diff": diff,
    }
    return fields, ref_out, counters


def _entry(name: str, fn: Callable[[], np.ndarray], repeats: int) -> dict:
    fields, __, counters = _measure(fn, repeats)
    return {"name": name, **fields, "counters": counters}


# -- autograd micro-benches ----------------------------------------------------


def _tr_linear_case(sizes: dict) -> Callable[[], np.ndarray]:
    """The MetaLoRA-TR linear contraction, forward + backward."""
    rng = np.random.default_rng(0)
    n, t, r, o = sizes["batch"], sizes["tokens"], sizes["rank"], sizes["features"]
    t1 = rng.standard_normal((n, t, r, r))
    core_b = rng.standard_normal((r, o, r))
    seed = rng.standard_normal((n, r, r))

    def fn() -> np.ndarray:
        a = Tensor(t1, requires_grad=True)
        b = Tensor(core_b, requires_grad=True)
        c = Tensor(seed, requires_grad=True)
        out = ops.einsum("ntpr,roq,nqp->nto", a, b, c)
        out.sum().backward()
        return np.concatenate([out.data.ravel(), b.grad.ravel()])

    return fn


def _cp_conv_case(sizes: dict) -> Callable[[], np.ndarray]:
    """The MetaLoRA-CP conv mixing contraction, forward + backward."""
    rng = np.random.default_rng(1)
    n, r, o, hw = sizes["batch"], sizes["rank"], sizes["features"], sizes["image"]
    mid = rng.standard_normal((n, r, hw, hw))
    seed = rng.standard_normal((n, r))
    factor_b = rng.standard_normal((r, o))

    def fn() -> np.ndarray:
        m = Tensor(mid, requires_grad=True)
        s = Tensor(seed, requires_grad=True)
        b = Tensor(factor_b, requires_grad=True)
        out = ops.einsum("nrhw,nr,ro->nohw", m, s, b)
        out.sum().backward()
        return np.concatenate([out.data.ravel(), s.grad.ravel()])

    return fn


def _paired_conv_case(sizes: dict) -> Callable[[], np.ndarray]:
    """Base conv + adapter conv over the same activations (patch-cache hit)."""
    rng = np.random.default_rng(2)
    n, c, hw, r = sizes["batch"], sizes["channels"], sizes["image"], sizes["rank"]
    x = Tensor(rng.standard_normal((n, c, hw, hw)))
    w_base = Tensor(rng.standard_normal((3, 3, c, c)) * 0.1, requires_grad=True)
    w_adapter = Tensor(rng.standard_normal((3, 3, c, r)) * 0.1, requires_grad=True)

    def fn() -> np.ndarray:
        base = conv_ops.conv2d(x, w_base, None, stride=1, padding=1)
        delta = conv_ops.conv2d(x, w_adapter, None, stride=1, padding=1)
        loss = base.sum() + delta.sum()
        loss.backward()
        out = np.concatenate([base.data.ravel(), delta.data.ravel()])
        w_base.zero_grad()
        w_adapter.zero_grad()
        return out

    return fn


def run_autograd_bench(scale: str = "tiny", repeats: int = 3) -> dict:
    """Reference-vs-optimized timings for the autograd hot paths."""
    sizes = _SCALES[scale]
    entries = [
        _entry("einsum.tr_linear_fwd_bwd", _tr_linear_case(sizes), repeats),
        _entry("einsum.cp_conv_fwd_bwd", _cp_conv_case(sizes), repeats),
        _entry("conv2d.paired_same_input", _paired_conv_case(sizes), repeats),
    ]
    return _finish_record("autograd", scale, repeats, entries)


# -- Table I protocol micro-bench ---------------------------------------------


def _meta_step_case(sizes: dict) -> Callable[[], np.ndarray]:
    """One Table I adaptation step: MetaLoRA-TR forward + backward."""
    from repro.models import FeatureExtractor, resnet_small
    from repro.peft import MetaLoRAModel, attach
    from repro.train.losses import cross_entropy
    from repro.utils.rng import new_rng

    rng = new_rng(0)
    num_classes = 4
    backbone = resnet_small(num_classes, rng)
    result = attach(backbone, "meta_tr", rank=sizes["rank"] // 2 or 2, rng=rng)
    extractor = FeatureExtractor(resnet_small(num_classes, new_rng(1)))
    model = MetaLoRAModel(backbone, extractor, rng=rng, adapters=result)
    data_rng = np.random.default_rng(2)
    x = Tensor(data_rng.normal(size=(sizes["batch"], 3, 16, 16)).astype(np.float32))
    labels = data_rng.integers(0, num_classes, size=sizes["batch"])

    def fn() -> np.ndarray:
        model.zero_grad()
        logits = model(x)
        loss = cross_entropy(logits, labels)
        loss.backward()
        grads = [
            p.grad.ravel() for p in model.trainable_parameters() if p.grad is not None
        ]
        return np.concatenate([logits.data.ravel(), loss.data.reshape(1)] + grads)

    return fn


def run_table1_bench(scale: str = "tiny", repeats: int = 3) -> dict:
    """Reference-vs-optimized timing of the Table I protocol training step."""
    sizes = _SCALES[scale]
    entries = [_entry("table1.meta_tr_train_step", _meta_step_case(sizes), repeats)]
    return _finish_record("table1", scale, repeats, entries)


# -- record assembly / validation / io ----------------------------------------


def _finish_record(kind: str, scale: str, repeats: int, entries: list[dict]) -> dict:
    speedups = [e["speedup"] for e in entries]
    record = {
        "schema": SCHEMA,
        "kind": kind,
        "scale": scale,
        "repeats": repeats,
        "entries": entries,
        "summary": {
            "min_speedup": float(min(speedups)),
            "geomean_speedup": float(np.exp(np.mean(np.log(speedups)))),
        },
    }
    validate_bench_record(record)
    return record


def validate_bench_record(record: dict) -> None:
    """Raise ``ValueError`` unless ``record`` matches the repro.bench/v1 schema."""

    def expect(condition: bool, message: str) -> None:
        if not condition:
            raise ValueError(f"invalid bench record: {message}")

    expect(isinstance(record, dict), "not a mapping")
    expect(record.get("schema") == SCHEMA, f"schema must be {SCHEMA!r}")
    expect(record.get("kind") in ("autograd", "table1"), "kind must be autograd|table1")
    expect(record.get("scale") in _SCALES, f"scale must be one of {sorted(_SCALES)}")
    expect(isinstance(record.get("repeats"), int) and record["repeats"] >= 1,
           "repeats must be a positive int")
    entries = record.get("entries")
    expect(isinstance(entries, list) and entries, "entries must be a non-empty list")
    for entry in entries:
        expect(isinstance(entry.get("name"), str) and entry["name"], "entry needs a name")
        for key in ("reference_seconds", "optimized_seconds", "speedup", "max_abs_diff"):
            value = entry.get(key)
            expect(isinstance(value, (int, float)) and np.isfinite(value) and value >= 0,
                   f"entry {entry.get('name')!r}: {key} must be a finite float >= 0")
        counters = entry.get("counters")
        expect(isinstance(counters, dict), f"entry {entry.get('name')!r}: counters must be a dict")
        for cname, stats in counters.items():
            expect(
                isinstance(stats, dict) and {"calls", "seconds", "bytes"} <= set(stats),
                f"counter {cname!r} must have calls/seconds/bytes",
            )
    summary = record.get("summary")
    expect(isinstance(summary, dict), "summary must be a dict")
    for key in ("min_speedup", "geomean_speedup"):
        value = summary.get(key)
        expect(isinstance(value, (int, float)) and np.isfinite(value) and value > 0,
               f"summary.{key} must be a finite float > 0")


def write_bench_records(
    out_dir: str = ".", scale: str = "tiny", repeats: int = 3
) -> list[str]:
    """Run both benches and write BENCH_autograd.json / BENCH_table1.json."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for kind, runner in (("autograd", run_autograd_bench), ("table1", run_table1_bench)):
        record = runner(scale=scale, repeats=repeats)
        path = os.path.join(out_dir, f"BENCH_{kind}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths


def format_bench_record(record: dict) -> str:
    """Human-readable table for one record (what the CLI prints)."""
    lines = [
        f"{record['kind']} bench  (scale={record['scale']}, "
        f"best of {record['repeats']})",
        f"{'case':<28} {'reference':>11} {'optimized':>11} {'speedup':>9}  {'max|diff|':>10}",
    ]
    for entry in record["entries"]:
        lines.append(
            f"{entry['name']:<28} {entry['reference_seconds'] * 1e3:>9.2f}ms "
            f"{entry['optimized_seconds'] * 1e3:>9.2f}ms "
            f"{entry['speedup']:>8.2f}x  {entry['max_abs_diff']:>10.2e}"
        )
    summary = record["summary"]
    lines.append(
        f"{'summary':<28} min {summary['min_speedup']:.2f}x   "
        f"geomean {summary['geomean_speedup']:.2f}x"
    )
    return "\n".join(lines)
